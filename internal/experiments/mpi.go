package experiments

import (
	"fmt"
	"io"

	"vnetp/internal/hpcc"
	"vnetp/internal/lab"
	"vnetp/internal/netstack"
	"vnetp/internal/npb"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func init() {
	register("fig10", "Intel MPI PingPong one-way latency (10G)", runFig10)
	register("fig11", "Intel MPI PingPong / SendRecv bandwidth (10G)", runFig11)
	register("fig12", "HPCC latency-bandwidth, 8-24 processes, 1G & 10G", runFig12)
	register("fig13", "HPCC MPIRandomAccess and MPIFFT (10G)", runFig13)
	register("fig14", "NAS Parallel Benchmarks Mop/s table", runFig14)
}

// mpiStacks builds per-rank stacks: hosts x ranksPerVM in order, either
// virtualized or native, over dev.
func mpiStacks(eng *sim.Engine, dev phys.Device, hosts, ranksPerVM int, virtualized bool) []*netstack.Stack {
	var base []*netstack.Stack
	if virtualized {
		base = lab.NewVNETPTestbed(eng, lab.Config{Dev: dev, N: hosts, Params: defaultParams()}).Stacks
	} else {
		base = lab.NewNativeTestbed(eng, dev, hosts).Stacks
	}
	var out []*netstack.Stack
	for i := 0; i < hosts; i++ {
		for k := 0; k < ranksPerVM; k++ {
			out = append(out, base[i])
		}
	}
	return out
}

func runFig10(w io.Writer) error {
	sizes := []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}
	engN := sim.New()
	nat := hpcc.PingPong(engN, mpiStacks(engN, phys.Eth10G, 2, 1, false), sizes, 5)
	engV := sim.New()
	vnp := hpcc.PingPong(engV, mpiStacks(engV, phys.Eth10G, 2, 1, true), sizes, 5)
	fmt.Fprintf(w, "%-10s %14s %14s %8s\n", "bytes", "Native", "VNET/P", "ratio")
	for i := range sizes {
		fmt.Fprintf(w, "%-10d %11.1fus %11.1fus %7.2fx\n",
			sizes[i], us(nat[i].OneWay), us(vnp[i].OneWay),
			float64(vnp[i].OneWay)/float64(nat[i].OneWay))
	}
	return nil
}

func runFig11(w io.Writer) error {
	sizes := []int{4096, 65536, 262144, 1 << 20, 4 << 20}
	engN := sim.New()
	nat := hpcc.PingPong(engN, mpiStacks(engN, phys.Eth10G, 2, 1, false), sizes, 3)
	engV := sim.New()
	vnp := hpcc.PingPong(engV, mpiStacks(engV, phys.Eth10G, 2, 1, true), sizes, 3)
	fmt.Fprintln(w, "(a) PingPong one-way bandwidth")
	fmt.Fprintf(w, "%-10s %12s %12s %8s\n", "bytes", "Native", "VNET/P", "ratio")
	for i := range sizes {
		fmt.Fprintf(w, "%-10d %7.0f MB/s %7.0f MB/s %7.0f%%\n",
			sizes[i], mbps(nat[i].BwBps), mbps(vnp[i].BwBps),
			100*vnp[i].BwBps/nat[i].BwBps)
	}
	engN2 := sim.New()
	natB := hpcc.SendRecvBench(engN2, mpiStacks(engN2, phys.Eth10G, 2, 1, false), sizes, 3)
	engV2 := sim.New()
	vnpB := hpcc.SendRecvBench(engV2, mpiStacks(engV2, phys.Eth10G, 2, 1, true), sizes, 3)
	fmt.Fprintln(w, "(b) SendRecv bidirectional bandwidth")
	fmt.Fprintf(w, "%-10s %12s %12s %8s\n", "bytes", "Native", "VNET/P", "ratio")
	for i := range sizes {
		fmt.Fprintf(w, "%-10d %7.0f MB/s %7.0f MB/s %7.0f%%\n",
			sizes[i], mbps(natB[i].BiBps), mbps(vnpB[i].BiBps),
			100*vnpB[i].BiBps/natB[i].BiBps)
	}
	return nil
}

func runFig12(w io.Writer) error {
	for _, dev := range []phys.Device{phys.Eth1G, phys.Eth10G} {
		fmt.Fprintf(w, "-- %s --\n", dev.Name)
		fmt.Fprintf(w, "%-6s | %22s | %26s | %26s\n",
			"procs", "pingpong lat/bw", "natural ring lat/bw", "random ring lat/bw")
		for _, hosts := range []int{2, 3, 4, 5, 6} {
			procs := hosts * 4
			engN := sim.New()
			nat := hpcc.LatBw(engN, mpiStacks(engN, dev, hosts, 4, false), 42)
			engV := sim.New()
			vnp := hpcc.LatBw(engV, mpiStacks(engV, dev, hosts, 4, true), 42)
			fmt.Fprintf(w, "%-6d | N %6.1fus %6.0fMB/s | N %6.1fus %8.0fMB/s | N %6.1fus %8.0fMB/s\n",
				procs, us(nat.PingPongLat), mbps(nat.PingPongBwBps),
				us(nat.NaturalRingLat), mbps(nat.NaturalRingBw),
				us(nat.RandomRingLat), mbps(nat.RandomRingBw))
			fmt.Fprintf(w, "%-6s | V %6.1fus %6.0fMB/s | V %6.1fus %8.0fMB/s | V %6.1fus %8.0fMB/s\n",
				"", us(vnp.PingPongLat), mbps(vnp.PingPongBwBps),
				us(vnp.NaturalRingLat), mbps(vnp.NaturalRingBw),
				us(vnp.RandomRingLat), mbps(vnp.RandomRingBw))
		}
	}
	return nil
}

func runFig13(w io.Writer) error {
	fmt.Fprintln(w, "(a) MPIRandomAccess")
	fmt.Fprintf(w, "%-6s %12s %12s %8s\n", "procs", "Native GUPs", "VNET/P GUPs", "ratio")
	for _, hosts := range []int{2, 3, 4, 5, 6} {
		engN := sim.New()
		nat := hpcc.RandomAccess(engN, mpiStacks(engN, phys.Eth10G, hosts, 4, false))
		engV := sim.New()
		vnp := hpcc.RandomAccess(engV, mpiStacks(engV, phys.Eth10G, hosts, 4, true))
		fmt.Fprintf(w, "%-6d %12.4f %12.4f %7.0f%%\n",
			hosts*4, nat.GUPs, vnp.GUPs, 100*vnp.GUPs/nat.GUPs)
	}
	fmt.Fprintln(w, "(b) MPIFFT")
	fmt.Fprintf(w, "%-6s %12s %12s %8s\n", "procs", "Native GF/s", "VNET/P GF/s", "ratio")
	for _, hosts := range []int{2, 3, 4, 5, 6} {
		engN := sim.New()
		nat := hpcc.FFT(engN, mpiStacks(engN, phys.Eth10G, hosts, 4, false))
		engV := sim.New()
		vnp := hpcc.FFT(engV, mpiStacks(engV, phys.Eth10G, hosts, 4, true))
		fmt.Fprintf(w, "%-6d %12.2f %12.2f %7.0f%%\n",
			hosts*4, nat.GFlops, vnp.GFlops, 100*vnp.GFlops/nat.GFlops)
	}
	return nil
}

func runFig14(w io.Writer) error {
	fmt.Fprintf(w, "%-9s %10s %10s %7s %11s %11s %7s\n",
		"Mop/s", "Native-1G", "VNET/P-1G", "%", "Native-10G", "VNET/P-10G", "%")
	for _, r := range npb.Table() {
		fmt.Fprintf(w, "%-9s %10.2f %10.2f %6.1f%% %11.2f %11.2f %6.1f%%\n",
			r.ID, r.Native1G, r.VNETP1G, 100*r.Ratio1G,
			r.Native10G, r.VNETP10G, 100*r.Ratio10G)
	}
	return nil
}
