// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index in DESIGN.md): each runner builds
// the matching testbed(s), executes the workload, and prints rows shaped
// like the paper's. The cmd/vnetbench binary and the repository-root
// benchmarks both drive this package.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

// Experiment is one reproducible evaluation item.
type Experiment struct {
	ID    string // "fig8", "fig14", ...
	Title string
	Run   func(w io.Writer) error
}

var registry []Experiment

func register(id, title string, run func(w io.Writer) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the experiments in registration (paper) order.
func All() []Experiment { return registry }

// IDs returns the known experiment IDs.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string, w io.Writer) error {
	for _, e := range registry {
		if e.ID == id {
			fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
			return e.Run(w)
		}
	}
	known := IDs()
	sort.Strings(known)
	return fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}

// RunAll executes every experiment.
func RunAll(w io.Writer) error {
	for _, e := range registry {
		fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// --- shared testbed builders ---

func vnetpPair(dev phys.Device) *lab.Testbed {
	return lab.NewVNETPTestbed(sim.New(), lab.Config{Dev: dev, N: 2, Params: core.DefaultParams()})
}

func nativePair(dev phys.Device) *lab.Testbed {
	return lab.NewNativeTestbed(sim.New(), dev, 2)
}

func mbps(bps float64) float64 { return bps / 1e6 }

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
