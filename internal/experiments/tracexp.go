package experiments

import (
	"fmt"
	"io"

	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/trace"
)

func init() {
	register("trace", "measured per-stage journey of one frame (VNET/P vs VNET/P+)", runTrace)
}

// runTrace tags one frame through a full 10G VNET/P crossing and prints
// the recorded stage timeline, for both the plain and the VNET/P+
// datapaths — the measured companion to fig7's analytic budget.
func runTrace(w io.Writer) error {
	for _, cfg := range []struct {
		label  string
		params core.Params
	}{
		{"VNET/P", core.DefaultParams()},
		{"VNET/P+", core.PlusParams()},
	} {
		eng := sim.New()
		c := lab.NewPair(eng, phys.Eth10G, cfg.params)
		tr := trace.New(eng)
		for _, n := range c.Nodes {
			n.Host.Tracer = tr
		}
		tr.Watch(1)
		c.Nodes[1].Iface.SetRecv(func() {
			for {
				if _, ok := c.Nodes[1].Iface.GuestRecv(); !ok {
					break
				}
			}
			c.Nodes[1].Iface.RxDone()
		})
		c.Nodes[0].Iface.TrySend(&ethernet.Frame{
			Dst: c.Nodes[1].MAC(), Src: c.Nodes[0].MAC(),
			Type: ethernet.TypeTest, Pad: 1000, Tag: 1,
		})
		eng.Run()
		eng.Close()
		path := tr.Path(1)
		if path == nil || len(path.Hops) == 0 {
			return fmt.Errorf("trace: no hops recorded for %s", cfg.label)
		}
		fmt.Fprintf(w, "%s (1000-byte frame, 10G):\n%s", cfg.label, path)
		fmt.Fprintf(w, "  end-to-end: %v\n\n", path.Elapsed())
	}
	return nil
}
