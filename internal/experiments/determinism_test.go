package experiments

import (
	"bytes"
	"testing"
)

// The whole evaluation is a deterministic simulation: running an
// experiment twice must produce byte-identical output. This is the
// macro-level guarantee that makes EXPERIMENTS.md reproducible.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"fig9", "fig5", "kitten", "ablation-modes"} {
		var a, b bytes.Buffer
		if err := Run(id, &a); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := Run(id, &b); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: two runs differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", id, a.String(), b.String())
		}
	}
}
