package vmm

import (
	"testing"
	"time"

	"vnetp/internal/faultnet"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func testNet(t *testing.T, dev phys.Device) (*sim.Engine, *Network, *Host, *Host) {
	t.Helper()
	e := sim.New()
	n := NewNetwork(e, dev)
	m := phys.DefaultModel()
	a := n.AddHost("a", m)
	b := n.AddHost("b", m)
	return e, n, a, b
}

func TestHostSendDelivery(t *testing.T) {
	e, _, a, b := testNet(t, phys.Eth10G)
	var got *WirePacket
	var at sim.Time
	b.SetReceiver(func(p *WirePacket) { got = p; at = e.Now() })
	a.Send("b", 1500, "payload")
	e.Run()
	if got == nil || got.Src != "a" || got.Dst != "b" || got.Size != 1500 || got.Payload != "payload" {
		t.Fatalf("got %+v", got)
	}
	// tx serialize (1.2µs) + base latency (11µs) + rx serialize (1.2µs).
	want := phys.Eth10G.TxTime(1500)*2 + phys.Eth10G.BaseLatency
	if at.Duration() != want {
		t.Fatalf("arrival at %v, want %v", at, want)
	}
	if a.TxPackets != 1 || b.RxPackets != 1 {
		t.Fatalf("counters tx=%d rx=%d", a.TxPackets, b.RxPackets)
	}
}

func TestSendUnknownHostPanics(t *testing.T) {
	_, _, a, _ := testNet(t, phys.Eth1G)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown destination")
		}
	}()
	a.Send("nope", 100, nil)
}

func TestDuplicateHostPanics(t *testing.T) {
	e := sim.New()
	n := NewNetwork(e, phys.Eth1G)
	n.AddHost("x", phys.DefaultModel())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate host")
		}
	}()
	n.AddHost("x", phys.DefaultModel())
}

func TestNetworkHostLookup(t *testing.T) {
	_, n, a, _ := testNet(t, phys.Eth1G)
	if n.Host("a") != a {
		t.Fatal("lookup failed")
	}
	if n.Host("zz") != nil {
		t.Fatal("lookup of missing host returned non-nil")
	}
}

func TestTxSerialization(t *testing.T) {
	e, _, a, b := testNet(t, phys.Eth1G) // 12µs per 1500B
	var arrivals []sim.Time
	b.SetReceiver(func(p *WirePacket) { arrivals = append(arrivals, e.Now()) })
	for i := 0; i < 3; i++ {
		a.Send("b", 1500, nil)
	}
	e.Run()
	if len(arrivals) != 3 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	gap := arrivals[1].Sub(arrivals[0])
	if gap != phys.Eth1G.TxTime(1500) {
		t.Fatalf("inter-arrival %v, want %v (line rate)", gap, phys.Eth1G.TxTime(1500))
	}
}

func TestRxIncastContention(t *testing.T) {
	// Two senders at line rate into one receiver must not exceed line rate
	// at the receiver.
	e := sim.New()
	n := NewNetwork(e, phys.Eth10G)
	m := phys.DefaultModel()
	recv := n.AddHost("r", m)
	s1 := n.AddHost("s1", m)
	s2 := n.AddHost("s2", m)
	var last sim.Time
	count := 0
	recv.SetReceiver(func(p *WirePacket) { count++; last = e.Now() })
	const pkts = 100
	for i := 0; i < pkts; i++ {
		s1.Send("r", 9000, nil)
		s2.Send("r", 9000, nil)
	}
	e.Run()
	if count != 2*pkts {
		t.Fatalf("received %d", count)
	}
	rate := float64(2*pkts*9000) / last.Seconds()
	if rate > phys.Eth10G.BytesPerSec*1.01 {
		t.Fatalf("incast rate %.0f exceeds line rate %.0f", rate, phys.Eth10G.BytesPerSec)
	}
}

func TestMemCopyCharges(t *testing.T) {
	e, _, a, _ := testNet(t, phys.Eth10G)
	var done sim.Time
	a.MemCopy(2800, func() { done = e.Now() }) // 2800B at 2.8GB/s = 1µs
	e.Run()
	if done.Duration() != time.Microsecond {
		t.Fatalf("copy completed at %v, want 1µs", done)
	}
}

func TestVMExitCharges(t *testing.T) {
	e, _, a, _ := testNet(t, phys.Eth10G)
	vm := NewVM(a, "vm0")
	var at sim.Time
	vm.Exit(0, func() { at = e.Now() })
	e.Run()
	if at.Duration() != phys.DefaultModel().VMExitEntry {
		t.Fatalf("exit handler at %v", at)
	}
	if vm.Exits != 1 {
		t.Fatalf("exits = %d", vm.Exits)
	}
}

func TestVMInjectPath(t *testing.T) {
	e, _, a, _ := testNet(t, phys.Eth10G)
	vm := NewVM(a, "vm0")
	m := phys.DefaultModel()
	var at sim.Time
	vm.Inject(func() { at = e.Now() })
	e.Run()
	want := m.InterruptInject + m.VMExitEntry + m.GuestIRQPath
	if at.Duration() != want {
		t.Fatalf("handler at %v, want %v", at, want)
	}
	if vm.Injections != 1 {
		t.Fatalf("injections = %d", vm.Injections)
	}
}

func TestVMIPIExit(t *testing.T) {
	e, _, a, _ := testNet(t, phys.Eth10G)
	vm := NewVM(a, "vm0")
	m := phys.DefaultModel()
	var at sim.Time
	vm.IPIExit(func() { at = e.Now() })
	e.Run()
	if at.Duration() != m.IPI+m.VMExitEntry {
		t.Fatalf("IPI exit at %v", at)
	}
	if vm.IPIs != 1 || vm.Exits != 1 {
		t.Fatalf("ipis=%d exits=%d", vm.IPIs, vm.Exits)
	}
}

func TestGuestCoreSerializes(t *testing.T) {
	// Interrupt handling delays application work on the same vCPU.
	e, _, a, _ := testNet(t, phys.Eth10G)
	vm := NewVM(a, "vm0")
	var order []string
	vm.Inject(func() { order = append(order, "irq") })
	vm.GuestWork(time.Microsecond, func() { order = append(order, "app") })
	e.Run()
	if len(order) != 2 || order[0] != "app" {
		// GuestWork was submitted second but Inject's guest-core work is
		// only enqueued after the 2µs injection delay, so app runs first,
		// then the IRQ path.
		t.Fatalf("order = %v, want [app irq]", order)
	}
}

func TestSetFaultDropsOnWire(t *testing.T) {
	e, _, a, b := testNet(t, phys.Eth10G)
	c := faultnet.New(faultnet.Config{DropProb: 1})
	a.SetFault(c)
	count := 0
	b.SetReceiver(func(p *WirePacket) { count++ })
	for i := 0; i < 5; i++ {
		a.Send("b", 1500, nil)
	}
	e.Run()
	if count != 0 {
		t.Fatalf("delivered %d packets through a total-loss conduit", count)
	}
	if c.Dropped.Load() != 5 {
		t.Fatalf("dropped = %d", c.Dropped.Load())
	}
	// TxPackets counts attempts; RxPackets proves nothing crossed.
	if a.TxPackets != 5 || b.RxPackets != 0 {
		t.Fatalf("tx=%d rx=%d", a.TxPackets, b.RxPackets)
	}
}

func TestSetFaultDelayInVirtualTime(t *testing.T) {
	e, _, a, b := testNet(t, phys.Eth10G)
	const extra = 500 * time.Microsecond
	c := faultnet.NewWithScheduler(faultnet.Config{Delay: extra},
		func(d time.Duration, fn func()) { e.Schedule(d, fn) })
	a.SetFault(c)
	var at sim.Time
	b.SetReceiver(func(p *WirePacket) { at = e.Now() })
	a.Send("b", 1500, nil)
	e.Run()
	want := extra + phys.Eth10G.TxTime(1500)*2 + phys.Eth10G.BaseLatency
	if at.Duration() != want {
		t.Fatalf("arrival at %v, want %v (delay must advance simulated time)", at, want)
	}
}

func TestSetFaultPartitionHealsCleanly(t *testing.T) {
	e, _, a, b := testNet(t, phys.Eth10G)
	c := faultnet.New(faultnet.Config{})
	a.SetFault(c)
	count := 0
	b.SetReceiver(func(p *WirePacket) { count++ })
	c.Partition(true)
	a.Send("b", 1500, nil)
	e.Run()
	if count != 0 {
		t.Fatal("partitioned wire delivered a packet")
	}
	c.Partition(false)
	a.Send("b", 1500, nil)
	e.Run()
	if count != 1 {
		t.Fatalf("healed wire delivered %d packets, want 1", count)
	}
}
