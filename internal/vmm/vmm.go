// Package vmm models the Palacios virtual machine monitor substrate at
// event level: physical hosts with NICs and a shared memory bus, the
// physical network connecting them, and VMs whose interactions with the
// VMM (exits, entries, interrupt injections, IPIs) carry the costs the
// paper's datapath analysis enumerates (Sect. 4.7).
//
// The package deliberately does not know about VNET/P itself: the overlay
// core (internal/core) and bridge (internal/bridge) build their datapaths
// from the primitives here.
package vmm

import (
	"fmt"
	"math/rand"
	"time"

	"vnetp/internal/faultnet"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/trace"
)

// WirePacket is a packet on the physical network: opaque payload plus the
// wire size that determines serialization time.
type WirePacket struct {
	Src, Dst string // host names
	Size     int
	Payload  any
}

// Host is a physical machine: a NIC on the interconnect, an aggregate
// memory-bus budget shared by every copy and DMA crossing, and a receive
// handler installed by whoever terminates the wire (a bridge, a native
// stack, or a VNET/U daemon).
type Host struct {
	Eng   *sim.Engine
	Name  string
	Model *phys.CostModel
	Dev   phys.Device

	// TxLink serializes outbound packets at the device rate.
	TxLink *sim.Link
	// RxLink models receive-side contention (incast): packets from many
	// senders serialize into this host at the device rate.
	RxLink *sim.Link
	// MemBus is the aggregate copy/DMA budget
	// (phys.CostModel.MemBusBytesPerSec).
	MemBus *sim.Link

	// Tracer, when non-nil, receives per-stage records for tagged frames
	// (internal/trace). The datapath components consult it through this
	// field.
	Tracer *trace.Tracer

	net    *Network
	recvFn func(pkt *WirePacket)
	noise  *rand.Rand
	fault  *faultnet.Conduit // optional fault injection on the TX wire

	// Stats
	RxPackets, TxPackets uint64
}

// Noise draws one host-OS scheduling perturbation per the cost model
// (zero when noise is disabled, as it is by default and always under a
// lightweight kernel). Deterministic: each host has its own seeded
// source.
func (h *Host) Noise() time.Duration {
	m := h.Model
	if m.NoiseMean == 0 && m.NoiseSpike == 0 {
		return 0
	}
	if h.noise == nil {
		seed := int64(1)
		for _, c := range h.Name {
			seed = seed*31 + int64(c)
		}
		h.noise = rand.New(rand.NewSource(seed))
	}
	d := time.Duration(h.noise.ExpFloat64() * float64(m.NoiseMean))
	if m.NoiseSpikeProb > 0 && h.noise.Float64() < m.NoiseSpikeProb {
		d += time.Duration(h.noise.Float64() * float64(m.NoiseSpike))
	}
	return d
}

// SetReceiver installs the function invoked for each packet arriving from
// the wire (after receive-side serialization; interrupt and stack costs
// are the receiver's to charge).
func (h *Host) SetReceiver(fn func(pkt *WirePacket)) { h.recvFn = fn }

// MemCopy charges one memory-bus crossing of n bytes and calls done when
// the crossing completes. DMA and software copies share the same budget.
func (h *Host) MemCopy(n int, done func()) {
	h.MemBus.Transmit(n, done)
}

// SetFault installs (or clears, with nil) a fault-injection conduit on
// the host's outbound wire. Build it with faultnet.NewWithScheduler and
// the engine's Schedule so delays advance in simulated, not wall-clock,
// time:
//
//	c := faultnet.NewWithScheduler(cfg, func(d time.Duration, fn func()) { eng.Schedule(d, fn) })
func (h *Host) SetFault(c *faultnet.Conduit) { h.fault = c }

// Send transmits a packet to another host on the same network: TX
// serialization at this host, base one-way latency, then RX serialization
// at the destination, then the destination's receive handler. An
// installed fault conduit sits before TX serialization, so dropped
// packets consume no wire time (the switch port never saw them).
func (h *Host) Send(dst string, size int, payload any) {
	peer, ok := h.net.hosts[dst]
	if !ok {
		panic(fmt.Sprintf("vmm: host %q sending to unknown host %q", h.Name, dst))
	}
	h.TxPackets++
	pkt := &WirePacket{Src: h.Name, Dst: dst, Size: size, Payload: payload}
	if h.fault != nil {
		h.fault.Send(pkt, func(p any) { h.sendWire(peer, p.(*WirePacket)) })
		return
	}
	h.sendWire(peer, pkt)
}

// sendWire is the fault-free wire path.
func (h *Host) sendWire(peer *Host, pkt *WirePacket) {
	h.TxLink.Transmit(pkt.Size, func() {
		h.Eng.Schedule(h.Dev.BaseLatency, func() {
			peer.RxLink.Transmit(pkt.Size, func() {
				peer.RxPackets++
				if peer.recvFn != nil {
					peer.recvFn(pkt)
				}
			})
		})
	})
}

// Network is a set of hosts on one interconnect (directly connected pair
// or a switched cluster — the model is the same: per-host TX and RX
// serialization plus a base latency).
type Network struct {
	Eng   *sim.Engine
	Dev   phys.Device
	hosts map[string]*Host
}

// NewNetwork creates an empty network over the given device type.
func NewNetwork(eng *sim.Engine, dev phys.Device) *Network {
	return &Network{Eng: eng, Dev: dev, hosts: make(map[string]*Host)}
}

// AddHost creates and attaches a host. Host names must be unique.
func (n *Network) AddHost(name string, model *phys.CostModel) *Host {
	if _, dup := n.hosts[name]; dup {
		panic(fmt.Sprintf("vmm: duplicate host %q", name))
	}
	h := &Host{
		Eng:    n.Eng,
		Name:   name,
		Model:  model,
		Dev:    n.Dev,
		TxLink: sim.NewLink(n.Eng, n.Dev.BytesPerSec, 0),
		RxLink: sim.NewLink(n.Eng, n.Dev.BytesPerSec, 0),
		MemBus: sim.NewLink(n.Eng, model.MemBusBytesPerSec, 0),
		net:    n,
	}
	n.hosts[name] = h
	return h
}

// Host looks up a host by name.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// VM is a virtual machine on a host. GuestCore is the vCPU on which all
// guest-side network processing (driver work, interrupt handling, stack
// costs) is charged; it is a serial resource, so interrupt storms delay
// application progress exactly as they would on real hardware without
// selective interrupt exiting.
type VM struct {
	Host      *Host
	Name      string
	GuestCore *sim.Worker

	// Stats the experiments report.
	Exits      uint64 // VM exits taken
	Injections uint64 // virtual interrupts injected
	IPIs       uint64 // cross-core IPIs received
}

// NewVM places a VM on a host.
func NewVM(h *Host, name string) *VM {
	return &VM{
		Host:      h,
		Name:      name,
		GuestCore: sim.NewWorker(h.Eng, sim.WorkerConfig{Yield: sim.YieldImmediate}),
	}
}

// Exit charges one VM exit/entry on the guest core and runs fn in the exit
// context (i.e., still on the guest's core, as guest-driven dispatch
// does).
func (vm *VM) Exit(extra time.Duration, fn func()) {
	vm.Exits++
	vm.GuestCore.Submit(vm.Host.Model.VMExitEntry+extra, fn)
}

// Inject delivers a virtual interrupt: the VMM-side injection cost is
// charged as a delay, then the guest core pays a VM entry/exit (waking
// from HLT or interrupting guest execution) plus the exit-amplified
// vAPIC/EOI interrupt path the paper attributes to missing selective
// interrupt exiting, then handler runs in guest interrupt context.
func (vm *VM) Inject(handler func()) {
	vm.Injections++
	m := vm.Host.Model
	vm.Host.Eng.Schedule(m.InterruptInject, func() {
		vm.GuestCore.Submit(m.VMExitEntry+m.GuestIRQPath, handler)
	})
}

// earlyDeliver is the immediate-delivery slice of an optimistic
// interrupt: just enough guest work to enter the handler.
const earlyDeliver = 2 * time.Microsecond

// InjectOptimistic delivers a virtual interrupt optimistically (the
// VNET/P+ technique): the handler runs after only the injection cost plus
// a minimal delivery slice, and the remainder of the exit-amplified
// interrupt path is paid on the guest core afterwards — same total CPU,
// but the packet-facing work is no longer behind it.
func (vm *VM) InjectOptimistic(handler func()) {
	vm.Injections++
	m := vm.Host.Model
	vm.Host.Eng.Schedule(m.InterruptInject, func() {
		vm.GuestCore.Submit(earlyDeliver, handler)
		rest := m.VMExitEntry + m.GuestIRQPath - earlyDeliver
		if rest > 0 {
			// The bookkeeping yields to the packet-facing work the
			// handler spawned: charge it a little later so it lands
			// behind the demux path on the core's queue.
			vm.Host.Eng.Schedule(25*time.Microsecond, func() {
				vm.GuestCore.Submit(rest, nil)
			})
		}
	})
}

// IPIExit models a dispatcher thread forcing the VM's core to exit via a
// cross-core IPI (used when a virtual NIC queue fills in VMM-driven mode):
// IPI latency, then an exit on the guest core, then fn in exit context.
func (vm *VM) IPIExit(fn func()) {
	vm.IPIs++
	vm.Host.Eng.Schedule(vm.Host.Model.IPI, func() {
		vm.Exit(0, fn)
	})
}

// GuestWork charges cost on the guest core and then runs fn (guest driver
// or guest stack processing).
func (vm *VM) GuestWork(cost time.Duration, fn func()) {
	vm.GuestCore.Submit(cost, fn)
}
