// Package microbench implements the paper's TCP/UDP/latency
// microbenchmark workloads (Sect. 5.2): ttcp-style throughput measurement
// and ping-style round-trip latency, runnable over any testbed
// configuration.
package microbench

import (
	"time"

	"vnetp/internal/lab"
	"vnetp/internal/netstack"
	"vnetp/internal/sim"
)

// ttcp port numbers.
const (
	streamPort = 5001
	udpPort    = 5002
)

// TTCPStream measures reliable-stream goodput between testbed nodes from
// and to: the receiver reads total bytes written in writeSize chunks
// (paper: "ttcp was configured to use a 256 KB socket buffer, and to
// communicate 40 MB writes were made"). Returns goodput in bytes/second.
func TTCPStream(tb *lab.Testbed, from, to, writeSize, total int) float64 {
	eng := tb.Eng
	// Warm-up bytes let adaptive mode settle into steady state before the
	// timed portion (the paper's 40 MB/60 s runs dwarf the 5 ms adaptive
	// window; our simulated transfers do not).
	warmup := total / 2
	var start, end sim.Time
	eng.Go("ttcp-recv", func(p *sim.Proc) {
		l := tb.Stacks[to].Listen(streamPort)
		st := l.Accept(p)
		st.ReadFull(p, warmup)
		start = p.Now()
		st.ReadFull(p, total)
		end = p.Now()
	})
	eng.Go("ttcp-send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		st := tb.Stacks[from].Dial(p, tb.IP(to), streamPort)
		for sent := 0; sent < warmup+total; sent += writeSize {
			n := writeSize
			if sent+n > warmup+total {
				n = warmup + total - sent
			}
			st.Write(p, n)
		}
		st.Close(p)
	})
	eng.Run()
	eng.Close()
	elapsed := end.Sub(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(total) / elapsed
}

// TTCPUDP measures UDP goodput: the sender blasts writeSize-byte sends
// for the given duration; the receiver counts payload bytes actually
// delivered (paper: "ttcp was configured to use 64000 byte writes sent as
// fast as possible over 60 seconds"). Returns goodput in bytes/second.
func TTCPUDP(tb *lab.Testbed, from, to, writeSize int, duration time.Duration) float64 {
	eng := tb.Eng
	// Let adaptive mode settle before the measurement window opens.
	warmup := 10 * time.Millisecond
	measureFrom := sim.Time(0).Add(warmup)
	var last sim.Time
	var received int
	recv := tb.Stacks[to].BindUDP(udpPort)
	eng.Go("udp-recv", func(p *sim.Proc) {
		for {
			d, ok := recv.RecvTimeout(p, warmup+duration+50*time.Millisecond)
			if !ok {
				return
			}
			if p.Now() < measureFrom {
				continue
			}
			last = p.Now()
			received += d.Size
		}
	})
	eng.Go("udp-send", func(p *sim.Proc) {
		sock := tb.Stacks[from].BindUDP(udpPort + 1)
		deadline := p.Now().Add(warmup + duration)
		for p.Now() < deadline {
			sock.SendTo(p, tb.IP(to), udpPort, writeSize)
		}
	})
	eng.Run()
	eng.Close()
	elapsed := last.Sub(measureFrom).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(received) / elapsed
}

// PingRTT measures the average ICMP round-trip time over n echoes of the
// given payload size (after one warm-up echo), mirroring the paper's
// 100-measurement ping averages.
func PingRTT(tb *lab.Testbed, from, to, size, n int) time.Duration {
	eng := tb.Eng
	var total time.Duration
	count := 0
	eng.Go("ping", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		tb.Stacks[from].Ping(p, tb.IP(to), size, time.Second) // warm up
		for i := 0; i < n; i++ {
			rtt, ok := tb.Stacks[from].Ping(p, tb.IP(to), size, time.Second)
			if !ok {
				continue
			}
			total += rtt
			count++
		}
	})
	eng.Run()
	eng.Close()
	if count == 0 {
		return 0
	}
	return total / time.Duration(count)
}

// Goodputs bundles one Fig-8-style measurement row.
type Goodputs struct {
	Label    string
	TCPBps   float64
	UDPBps   float64
	MTU      int
	WriteLen int
}

// StreamWriteFor returns the paper's write size for a given guest MTU
// ("for TCP we configure ttcp to use writes of corresponding size").
func StreamWriteFor(guestMTU int) int {
	if guestMTU >= 8000 {
		return guestMTU - netstack.HeaderLen
	}
	return 64 << 10
}
