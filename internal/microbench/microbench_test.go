package microbench

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
	"vnetp/internal/vnetu"
)

// Short simulated measurement windows: long enough for steady state,
// short enough for fast tests.
const (
	udpWindow   = 20 * time.Millisecond
	tcpTotal    = 8 << 20
	tcpTotal1G  = 2 << 20
	pingSamples = 20
)

func vnetpPairTB(dev phys.Device) *lab.Testbed {
	return lab.NewVNETPTestbed(sim.New(), lab.Config{Dev: dev, N: 2, Params: core.DefaultParams()})
}

func nativePairTB(dev phys.Device) *lab.Testbed {
	return lab.NewNativeTestbed(sim.New(), dev, 2)
}

func TestFig8Shape1G(t *testing.T) {
	natTCP := TTCPStream(nativePairTB(phys.Eth1G), 0, 1, 64<<10, tcpTotal1G)
	vnpTCP := TTCPStream(vnetpPairTB(phys.Eth1G), 0, 1, 64<<10, tcpTotal1G)
	natUDP := TTCPUDP(nativePairTB(phys.Eth1G), 0, 1, 64000, udpWindow)
	vnpUDP := TTCPUDP(vnetpPairTB(phys.Eth1G), 0, 1, 64000, udpWindow)
	t.Logf("1G: native TCP %.1f MB/s, VNET/P TCP %.1f MB/s", natTCP/1e6, vnpTCP/1e6)
	t.Logf("1G: native UDP %.1f MB/s, VNET/P UDP %.1f MB/s", natUDP/1e6, vnpUDP/1e6)

	// Paper: "VNET/P performs identically to the native case for the
	// 1 Gbps network."
	if r := vnpTCP / natTCP; r < 0.93 {
		t.Errorf("VNET/P-1G TCP at %.0f%% of native, want ~100%%", r*100)
	}
	if r := vnpUDP / natUDP; r < 0.93 {
		t.Errorf("VNET/P-1G UDP at %.0f%% of native, want ~100%%", r*100)
	}
	// Native 1G should be near line rate (125 MB/s).
	if natUDP < 100e6 || natUDP > 126e6 {
		t.Errorf("native-1G UDP %.1f MB/s, want ~110-125", natUDP/1e6)
	}
}

func TestFig8Shape10G(t *testing.T) {
	// Standard MTU (1500).
	natTCPstd := TTCPStream(nativePairTB(phys.Eth10GStd), 0, 1, 64<<10, tcpTotal)
	vnpTCPstd := TTCPStream(vnetpPairTB(phys.Eth10GStd), 0, 1, 64<<10, tcpTotal)
	natUDPstd := TTCPUDP(nativePairTB(phys.Eth10GStd), 0, 1, 64000, udpWindow)
	vnpUDPstd := TTCPUDP(vnetpPairTB(phys.Eth10GStd), 0, 1, 64000, udpWindow)
	t.Logf("10G-1500: native TCP %.0f MB/s UDP %.0f MB/s; VNET/P TCP %.0f MB/s UDP %.0f MB/s",
		natTCPstd/1e6, natUDPstd/1e6, vnpTCPstd/1e6, vnpUDPstd/1e6)

	// Paper: VNET/P achieves 74-78% of native on 10G at standard MTU.
	rt, ru := vnpTCPstd/natTCPstd, vnpUDPstd/natUDPstd
	if rt < 0.55 || rt > 0.95 {
		t.Errorf("VNET/P-10G-1500 TCP at %.0f%% of native, want ~60-90%%", rt*100)
	}
	if ru < 0.55 || ru > 0.95 {
		t.Errorf("VNET/P-10G-1500 UDP at %.0f%% of native, want ~60-90%%", ru*100)
	}

	// Jumbo (9000).
	wj := StreamWriteFor(lab.GuestMTUFor(phys.Eth10G))
	natTCPj := TTCPStream(nativePairTB(phys.Eth10G), 0, 1, wj, tcpTotal)
	vnpTCPj := TTCPStream(vnetpPairTB(phys.Eth10G), 0, 1, wj, tcpTotal)
	natUDPj := TTCPUDP(nativePairTB(phys.Eth10G), 0, 1, 8900, udpWindow)
	vnpUDPj := TTCPUDP(vnetpPairTB(phys.Eth10G), 0, 1, 8900, udpWindow)
	t.Logf("10G-9000: native TCP %.0f MB/s UDP %.0f MB/s; VNET/P TCP %.0f MB/s UDP %.0f MB/s",
		natTCPj/1e6, natUDPj/1e6, vnpTCPj/1e6, vnpUDPj/1e6)

	// Paper: "performance increases across the board compared to the 1500
	// byte MTU results."
	if vnpTCPj <= vnpTCPstd || vnpUDPj <= vnpUDPstd {
		t.Errorf("jumbo VNET/P (%.0f/%.0f MB/s) not above standard-MTU (%.0f/%.0f MB/s)",
			vnpTCPj/1e6, vnpUDPj/1e6, vnpTCPstd/1e6, vnpUDPstd/1e6)
	}
	if r := vnpUDPj / natUDPj; r < 0.6 || r > 0.98 {
		t.Errorf("VNET/P-10G-9000 UDP at %.0f%% of native", r*100)
	}
}

func TestFig8VNETUBaseline(t *testing.T) {
	// Sect. 5.2: VNET/U on Palacios reaches 71 MB/s; on VMware, 35 MB/s.
	tbP := lab.NewVNETUTestbed(sim.New(), phys.Eth1G, 2, vnetu.PalaciosTap)
	palTCP := TTCPStream(tbP, 0, 1, 64<<10, tcpTotal1G)
	tbV := lab.NewVNETUTestbed(sim.New(), phys.Eth1G, 2, vnetu.VMwareTap)
	vmwTCP := TTCPStream(tbV, 0, 1, 64<<10, tcpTotal1G)
	t.Logf("VNET/U: palacios-tap %.1f MB/s, vmware-tap %.1f MB/s", palTCP/1e6, vmwTCP/1e6)

	if palTCP < 50e6 || palTCP > 95e6 {
		t.Errorf("VNET/U (Palacios tap) %.1f MB/s, want ~60-85 (paper: 71)", palTCP/1e6)
	}
	if vmwTCP < 25e6 || vmwTCP > 50e6 {
		t.Errorf("VNET/U (VMware tap) %.1f MB/s, want ~28-45 (paper: 35)", vmwTCP/1e6)
	}
	if vmwTCP >= palTCP {
		t.Error("VMware tap should be slower than the Palacios custom tap")
	}
	// VNET/U cannot saturate a 1 Gbps link (the paper's core motivation).
	if palTCP > 110e6 {
		t.Errorf("VNET/U at %.1f MB/s saturates 1G; it must not", palTCP/1e6)
	}
}

func TestFig9LatencyShape(t *testing.T) {
	nat10 := PingRTT(nativePairTB(phys.Eth10G), 0, 1, 56, pingSamples)
	vnp10 := PingRTT(vnetpPairTB(phys.Eth10G), 0, 1, 56, pingSamples)
	nat1 := PingRTT(nativePairTB(phys.Eth1G), 0, 1, 56, pingSamples)
	vnp1 := PingRTT(vnetpPairTB(phys.Eth1G), 0, 1, 56, pingSamples)
	t.Logf("ping 56B: native-10G %v, VNET/P-10G %v (%.1fx)", nat10, vnp10, float64(vnp10)/float64(nat10))
	t.Logf("ping 56B: native-1G %v, VNET/P-1G %v (%.1fx)", nat1, vnp1, float64(vnp1)/float64(nat1))

	// Paper Fig 9: ~2x on 1G, ~3x on 10G, VNET/P-10G ~130µs absolute.
	r10 := float64(vnp10) / float64(nat10)
	if r10 < 1.8 || r10 > 4.5 {
		t.Errorf("10G RTT ratio %.2f, want ~2-4 (paper ~3)", r10)
	}
	r1 := float64(vnp1) / float64(nat1)
	if r1 < 1.3 || r1 > 3.2 {
		t.Errorf("1G RTT ratio %.2f, want ~1.5-2.5 (paper ~2)", r1)
	}
	if vnp10 < 80*time.Microsecond || vnp10 > 200*time.Microsecond {
		t.Errorf("VNET/P-10G RTT %v, want ~100-170µs (paper ~130µs)", vnp10)
	}
	// Larger payloads raise RTT monotonically-ish.
	small := PingRTT(vnetpPairTB(phys.Eth10G), 0, 1, 64, pingSamples)
	large := PingRTT(vnetpPairTB(phys.Eth10G), 0, 1, 8192, pingSamples)
	if large <= small {
		t.Errorf("RTT(8192B)=%v <= RTT(64B)=%v", large, small)
	}
}

func TestVNETULatencyOverhead(t *testing.T) {
	// Sect. 5.2: VNET/U adds ~0.88 ms over native; VNET/P is ~7x lower
	// latency than VNET/U.
	nat := PingRTT(nativePairTB(phys.Eth1G), 0, 1, 56, pingSamples)
	tbU := lab.NewVNETUTestbed(sim.New(), phys.Eth1G, 2, vnetu.PalaciosTap)
	vu := PingRTT(tbU, 0, 1, 56, pingSamples)
	vnp10 := PingRTT(vnetpPairTB(phys.Eth10G), 0, 1, 56, pingSamples)
	tbU10 := lab.NewVNETUTestbed(sim.New(), phys.Eth10G, 2, vnetu.PalaciosTap)
	vu10 := PingRTT(tbU10, 0, 1, 56, pingSamples)
	t.Logf("VNET/U-1G RTT %v (native %v, overhead %v)", vu, nat, vu-nat)
	t.Logf("VNET/U-10G RTT %v vs VNET/P-10G %v (%.1fx)", vu10, vnp10, float64(vu10)/float64(vnp10))

	over := vu - nat
	if over < 500*time.Microsecond || over > 1500*time.Microsecond {
		t.Errorf("VNET/U latency overhead %v, want ~0.6-1.2ms (paper 0.88ms)", over)
	}
	if r := float64(vu10) / float64(vnp10); r < 4 || r > 12 {
		t.Errorf("VNET/U / VNET/P latency ratio %.1f, want ~5-9 (paper ~7)", r)
	}
}
