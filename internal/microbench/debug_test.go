package microbench

import (
	"testing"
	"time"

	"vnetp/internal/core"
	"vnetp/internal/lab"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

func TestDebugUDPVNETP(t *testing.T) {
	eng := sim.New()
	params := core.DefaultParams()
	params.Mode = core.VMMDriven
	tb := lab.NewVNETPTestbed(eng, lab.Config{Dev: phys.Eth10GStd, N: 2, Params: params})
	rate := TTCPUDP(tb, 0, 1, 64000, 20*time.Millisecond)
	t.Logf("UDP rate %.0f MB/s", rate/1e6)
	for i, n := range tb.VNETP.Nodes {
		el := float64(20 * time.Millisecond)
		t.Logf("node%d: guestCore=%.0f%% disp=%.0f%% bridge=%.0f%% membus=%.0f%% txlink=%.0f%% rxlink=%.0f%%",
			i,
			100*float64(n.VM.GuestCore.BusyTime)/el,
			100*float64(n.Core.Dispatchers()[0].BusyTime)/el,
			100*float64(n.Bridge.Worker().BusyTime)/el,
			100*float64(n.Host.MemBus.BusyTime)/el,
			100*float64(n.Host.TxLink.BusyTime)/el,
			100*float64(n.Host.RxLink.BusyTime)/el)
	}
}

func TestDebugStreamVNETP(t *testing.T) {
	for _, mode := range []core.Mode{core.GuestDriven, core.VMMDriven, core.Adaptive} {
		t.Run(mode.String(), func(t *testing.T) { debugStream(t, mode) })
	}
}

func debugStream(t *testing.T, mode core.Mode) {
	eng := sim.New()
	params := core.DefaultParams()
	params.Mode = mode
	tb := lab.NewVNETPTestbed(eng, lab.Config{Dev: phys.Eth10GStd, N: 2, Params: params})
	const total = 2 << 20
	var start, end sim.Time
	eng.Go("recv", func(p *sim.Proc) {
		l := tb.Stacks[1].Listen(5001)
		st := l.Accept(p)
		start = p.Now()
		st.ReadFull(p, total)
		end = p.Now()
		t.Logf("recv side: dupacks=%d rcvd=%d", st.DupAcks, st.BytesReceived)
	})
	eng.Go("send", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		st := tb.Stacks[0].Dial(p, tb.IP(1), 5001)
		st.Write(p, total)
		st.Close(p)
		t.Logf("send side: retransmits=%d sent=%d", st.Retransmits, st.BytesSent)
	})
	eng.Run()
	eng.Close()
	n0, n1 := tb.VNETP.Nodes[0], tb.VNETP.Nodes[1]
	t.Logf("rate=%.1f MB/s elapsed=%v", float64(total)/end.Sub(start).Seconds()/1e6, end.Sub(start))
	t.Logf("node0: mode=%v kicks=%d avoided=%d switches=%d exits=%d inj=%d ipis=%d",
		n0.Iface.Mode(), n0.Iface.Kicks, n0.Iface.KicksAvoided, n0.Iface.ModeSwitches, n0.VM.Exits, n0.VM.Injections, n0.VM.IPIs)
	t.Logf("node1: mode=%v kicks=%d avoided=%d switches=%d exits=%d inj=%d ipis=%d rxdrop=%d",
		n1.Iface.Mode(), n1.Iface.Kicks, n1.Iface.KicksAvoided, n1.Iface.ModeSwitches, n1.VM.Exits, n1.VM.Injections, n1.VM.IPIs, n1.Iface.RxDropped)
	t.Logf("node0 bridge: encap=%d frags=%d; node1 recv=%d reasm=%d",
		n0.Bridge.EncapSent, n0.Bridge.FragmentsSent, n1.Bridge.Received, n1.Bridge.Reassembled)
	el := float64(end.Sub(start))
	for i, n := range tb.VNETP.Nodes {
		t.Logf("node%d util: guest=%.0f%% disp=%.0f%% bridge=%.0f%% membus=%.0f%% tx=%.0f%% rx=%.0f%%",
			i,
			100*float64(n.VM.GuestCore.BusyTime)/el,
			100*float64(n.Core.Dispatchers()[0].BusyTime)/el,
			100*float64(n.Bridge.Worker().BusyTime)/el,
			100*float64(n.Host.MemBus.BusyTime)/el,
			100*float64(n.Host.TxLink.BusyTime)/el,
			100*float64(n.Host.RxLink.BusyTime)/el)
	}
}
