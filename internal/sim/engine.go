// Package sim provides a deterministic discrete-event simulation engine
// used by the performance half of the VNET/P reproduction.
//
// The engine executes events in (time, sequence) order on a single
// goroutine. Cooperative "processes" (Proc) are goroutines that run one at
// a time, interleaved with event execution, so the whole simulation is
// deterministic: the same program produces the same event trace on every
// run.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an absolute simulated time in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to a duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	when      Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (ev *Event) Cancel() {
	if ev != nil {
		ev.cancelled = true
	}
}

// When reports the simulated time at which the event is scheduled to fire.
func (ev *Event) When() Time { return ev.when }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; call New.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	sync    chan struct{} // proc -> engine control handoff
	procs   map[*Proc]struct{}
	running bool
	closed  bool
	// panicVal carries a panic out of a process goroutine so it can be
	// re-raised on the engine goroutine (where the test/caller can see it).
	panicVal any
	// Trace, when non-nil, receives a line per executed event. Used by
	// determinism tests.
	Trace func(t Time, seq uint64)
}

// New returns a fresh engine with the clock at zero.
func New() *Engine {
	return &Engine{
		sync:  make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run d from now. A negative d is treated as
// zero. The returned Event may be cancelled.
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt arranges for fn to run at absolute time t. Scheduling in the
// past panics: it would silently reorder causality.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if e.closed {
		panic("sim: Schedule on closed engine")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// Step executes the next pending event, advancing the clock. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.when
		if e.Trace != nil {
			e.Trace(ev.when, ev.seq)
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.running = true
	defer func() { e.running = false }()
	for {
		ev := e.peek()
		if ev == nil || ev.when > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor executes events for d of simulated time from now.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		if e.queue[0].cancelled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}

// Pending reports the number of queued (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// waitProc waits for a running process to hand control back to the engine
// and re-raises any panic the process died with.
func (e *Engine) waitProc() {
	<-e.sync
	if e.panicVal != nil {
		v := e.panicVal
		e.panicVal = nil
		panic(v)
	}
}

// Close terminates all blocked processes (their goroutines exit via an
// internal panic that is recovered in the process runner) and marks the
// engine unusable. It must be called from engine context (not from inside
// a process) once the simulation is finished, to avoid leaking goroutines
// across benchmark iterations.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for p := range e.procs {
		if p.blocked {
			p.blocked = false
			p.resume <- true // killed
			e.waitProc()
		}
	}
	e.procs = nil
	e.queue = nil
}
