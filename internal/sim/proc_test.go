package sim

import (
	"testing"
	"time"
)

func TestProcSleep(t *testing.T) {
	e := New()
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(100 * time.Microsecond)
		wake = p.Now()
	})
	e.Run()
	if wake != Time(100*time.Microsecond) {
		t.Fatalf("woke at %v, want 100µs", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := New()
	var ts []Time
	e.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			ts = append(ts, p.Now())
		}
	})
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("ts = %v, want %v", ts, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20) // wakes at 30
		order = append(order, "a30")
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
	})
	e.Run()
	want := []string{"a10", "b20", "a30"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcSleepUntil(t *testing.T) {
	e := New()
	e.Go("p", func(p *Proc) {
		p.SleepUntil(50)
		if p.Now() != 50 {
			t.Errorf("now = %v, want 50", p.Now())
		}
		p.SleepUntil(20) // past: no-op
		if p.Now() != 50 {
			t.Errorf("SleepUntil in the past moved the clock to %v", p.Now())
		}
	})
	e.Run()
}

func TestProcYield(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	// a starts first, yields; b runs; a resumes. All at t=0.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 0 {
		t.Fatalf("yield advanced the clock to %v", e.Now())
	}
}

func TestProcSpawnFromProc(t *testing.T) {
	e := New()
	var childAt Time
	e.Go("parent", func(p *Proc) {
		p.Sleep(5)
		e.Go("child", func(c *Proc) {
			c.Sleep(5)
			childAt = c.Now()
		})
		p.Sleep(100)
	})
	e.Run()
	if childAt != 10 {
		t.Fatalf("child finished at %v, want 10", childAt)
	}
}

func TestCloseKillsBlockedProcs(t *testing.T) {
	e := New()
	ch := NewChan[int](e)
	finished := false
	e.Go("stuck", func(p *Proc) {
		ch.Recv(p) // never satisfied
		finished = true
	})
	e.Run()
	e.Close()
	if finished {
		t.Fatal("blocked process ran to completion after Close")
	}
	// Double close is a no-op.
	e.Close()
}

func TestProcPanicPropagates(t *testing.T) {
	// A real panic inside a proc must not be swallowed as a kill.
	defer func() {
		if recover() == nil {
			t.Fatal("process panic was swallowed")
		}
	}()
	e := New()
	e.Go("bad", func(p *Proc) {
		panic("boom")
	})
	e.Run()
}

func TestManyProcsDeterministicCompletion(t *testing.T) {
	e := New()
	const n = 100
	var done int
	for i := 0; i < n; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i % 7))
			done++
		})
	}
	e.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
}
