package sim

import "time"

// Link models a serialized transmission resource: a wire (or NIC port)
// with finite bandwidth and fixed propagation latency. Transmissions are
// store-and-forward and FIFO: a packet begins serializing when the link is
// next free, occupies the link for size/bandwidth, and is delivered one
// propagation latency after serialization completes. Links never reorder.
type Link struct {
	eng *Engine
	// BytesPerSec is the serialization rate. Zero means infinitely fast.
	BytesPerSec float64
	// Latency is the propagation delay added after serialization.
	Latency time.Duration

	nextFree Time

	// Stats
	TxPackets uint64
	TxBytes   uint64
	BusyTime  time.Duration
}

// NewLink returns a link with the given rate (bytes/second) and
// propagation latency.
func NewLink(e *Engine, bytesPerSec float64, latency time.Duration) *Link {
	return &Link{eng: e, BytesPerSec: bytesPerSec, Latency: latency}
}

// TxTime reports how long serializing size bytes occupies the link.
func (l *Link) TxTime(size int) time.Duration {
	if l.BytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(size) / l.BytesPerSec * 1e9)
}

// Transmit queues size bytes on the link and schedules deliver to run when
// the last byte arrives at the far end. It returns the delivery time.
func (l *Link) Transmit(size int, deliver func()) Time {
	now := l.eng.now
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	tx := l.TxTime(size)
	l.nextFree = start.Add(tx)
	l.TxPackets++
	l.TxBytes += uint64(size)
	l.BusyTime += tx
	arrival := l.nextFree.Add(l.Latency)
	if deliver == nil {
		deliver = func() {}
	}
	l.eng.ScheduleAt(arrival, deliver)
	return arrival
}

// QueueDelay reports how long a packet submitted now would wait before it
// begins serializing.
func (l *Link) QueueDelay() time.Duration {
	if l.nextFree <= l.eng.now {
		return 0
	}
	return l.nextFree.Sub(l.eng.now)
}

// Utilization reports the fraction of the interval [0, now] the link spent
// serializing.
func (l *Link) Utilization() float64 {
	if l.eng.now == 0 {
		return 0
	}
	return float64(l.BusyTime) / float64(l.eng.now)
}
