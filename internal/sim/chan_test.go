package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestChanFIFO(t *testing.T) {
	e := New()
	ch := NewChan[int](e)
	var got []int
	e.Go("recv", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	e.Go("send", func(p *Proc) {
		for i := 0; i < 5; i++ {
			ch.Send(i)
			p.Sleep(1)
		}
	})
	e.Run()
	for i := 0; i < 5; i++ {
		if got[i] != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestChanRecvBeforeSend(t *testing.T) {
	e := New()
	ch := NewChan[string](e)
	var got string
	var at Time
	e.Go("recv", func(p *Proc) {
		got = ch.Recv(p)
		at = p.Now()
	})
	e.Go("send", func(p *Proc) {
		p.Sleep(100)
		ch.Send("hello")
	})
	e.Run()
	if got != "hello" || at != 100 {
		t.Fatalf("got %q at %v, want hello at 100", got, at)
	}
}

func TestChanTryRecv(t *testing.T) {
	e := New()
	ch := NewChan[int](e)
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan returned ok")
	}
	ch.Send(7)
	if v, ok := ch.TryRecv(); !ok || v != 7 {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
	if ch.Len() != 0 {
		t.Fatalf("len = %d after drain", ch.Len())
	}
}

func TestChanTwoWaitersOneItem(t *testing.T) {
	e := New()
	ch := NewChan[int](e)
	var winners []string
	e.Go("w1", func(p *Proc) {
		v := ch.Recv(p)
		winners = append(winners, "w1")
		_ = v
	})
	e.Go("w2", func(p *Proc) {
		v := ch.Recv(p)
		winners = append(winners, "w2")
		_ = v
	})
	e.Go("send", func(p *Proc) {
		p.Sleep(10)
		ch.Send(1)
		p.Sleep(10)
		ch.Send(2)
	})
	e.Run()
	if len(winners) != 2 || winners[0] != "w1" || winners[1] != "w2" {
		t.Fatalf("winners = %v, want [w1 w2] (FIFO waiter wakeup)", winners)
	}
}

func TestChanRecvTimeoutExpires(t *testing.T) {
	e := New()
	ch := NewChan[int](e)
	var ok bool
	var at Time
	e.Go("recv", func(p *Proc) {
		_, ok = ch.RecvTimeout(p, 50*time.Nanosecond)
		at = p.Now()
	})
	e.Run()
	if ok {
		t.Fatal("timeout recv reported ok with no sender")
	}
	if at != 50 {
		t.Fatalf("timed out at %v, want 50", at)
	}
}

func TestChanRecvTimeoutSatisfied(t *testing.T) {
	e := New()
	ch := NewChan[int](e)
	var v int
	var ok bool
	e.Go("recv", func(p *Proc) {
		v, ok = ch.RecvTimeout(p, 100*time.Nanosecond)
	})
	e.Go("send", func(p *Proc) {
		p.Sleep(30)
		ch.Send(42)
	})
	e.Run()
	if !ok || v != 42 {
		t.Fatalf("got %v,%v want 42,true", v, ok)
	}
	// The stale timeout timer must not fire into a later blocking call.
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run", e.Pending())
	}
}

func TestChanRecvTimeoutThenRecvAgain(t *testing.T) {
	// A proc that times out and then blocks again must not be woken by the
	// stale Send wake event from the first wait.
	e := New()
	ch := NewChan[int](e)
	var seq []int
	e.Go("recv", func(p *Proc) {
		if _, ok := ch.RecvTimeout(p, 10*time.Nanosecond); ok {
			t.Error("first recv should have timed out")
		}
		v := ch.Recv(p)
		seq = append(seq, v, int(p.Now()))
	})
	e.Go("send", func(p *Proc) {
		p.Sleep(20)
		ch.Send(9)
	})
	e.Run()
	if len(seq) != 2 || seq[0] != 9 || seq[1] != 20 {
		t.Fatalf("seq = %v, want [9 20]", seq)
	}
}

func TestCondBroadcast(t *testing.T) {
	e := New()
	cv := NewCond(e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			cv.Wait(p)
			woke++
		})
	}
	e.Go("fire", func(p *Proc) {
		p.Sleep(10)
		cv.Broadcast()
	})
	e.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestBarrier(t *testing.T) {
	e := New()
	const n = 4
	b := NewBarrier(e, n)
	var release []Time
	for i := 0; i < n; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Duration(10 * (i + 1)))
			b.Await(p)
			release = append(release, p.Now())
		})
	}
	e.Run()
	if len(release) != n {
		t.Fatalf("released %d, want %d", len(release), n)
	}
	for _, r := range release {
		if r != 40 {
			t.Fatalf("release times %v, want all 40 (last arrival)", release)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := New()
	const n = 3
	b := NewBarrier(e, n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			for round := 0; round < 5; round++ {
				p.Sleep(time.Duration(i + 1))
				b.Await(p)
				counts[i]++
			}
		})
	}
	e.Run()
	for i, c := range counts {
		if c != 5 {
			t.Fatalf("proc %d completed %d rounds, want 5", i, c)
		}
	}
}

// Property: everything sent is received exactly once, in order, for any
// interleaving of sender sleeps.
func TestChanDeliveryProperty(t *testing.T) {
	prop := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		e := New()
		ch := NewChan[int](e)
		var got []int
		e.Go("recv", func(p *Proc) {
			for range delays {
				got = append(got, ch.Recv(p))
			}
		})
		e.Go("send", func(p *Proc) {
			for i, d := range delays {
				p.Sleep(time.Duration(d))
				ch.Send(i)
			}
		})
		e.Run()
		e.Close()
		if len(got) != len(delays) {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
