package sim

import "time"

// waiter pairs a blocked process with its wake token.
type waiter struct {
	p   *Proc
	tok uint64
}

// Chan is an unbounded FIFO queue connecting simulated processes and event
// callbacks. Send never blocks; Recv blocks the calling process until an
// item is available. It is the basic rendezvous primitive of the
// simulation (virtio ring notifications, socket receive queues, MPI
// matching queues are all built on it).
type Chan[T any] struct {
	eng     *Engine
	items   []T
	waiters []waiter
}

// NewChan returns an empty queue bound to e.
func NewChan[T any](e *Engine) *Chan[T] {
	return &Chan[T]{eng: e}
}

// Len reports the number of queued items.
func (c *Chan[T]) Len() int { return len(c.items) }

// Send enqueues v and wakes one waiting receiver (if any) at the current
// simulated time. It may be called from engine context or process context.
func (c *Chan[T]) Send(v T) {
	c.items = append(c.items, v)
	c.wakeOne()
}

func (c *Chan[T]) wakeOne() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.eng.Schedule(0, func() { w.p.wake(w.tok) })
}

// TryRecv dequeues an item without blocking.
func (c *Chan[T]) TryRecv() (T, bool) {
	if len(c.items) == 0 {
		var zero T
		return zero, false
	}
	v := c.items[0]
	c.items[0] = *new(T)
	c.items = c.items[1:]
	return v, true
}

// Recv blocks p until an item is available, then dequeues it.
func (c *Chan[T]) Recv(p *Proc) T {
	for {
		if v, ok := c.TryRecv(); ok {
			return v
		}
		tok := p.blockToken()
		c.waiters = append(c.waiters, waiter{p, tok})
		p.block()
	}
}

// RecvTimeout is like Recv but gives up after d, returning ok=false. A
// non-positive d polls without blocking.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (T, bool) {
	deadline := p.eng.now.Add(d)
	for {
		if v, ok := c.TryRecv(); ok {
			return v, true
		}
		if p.eng.now >= deadline {
			var zero T
			return zero, false
		}
		tok := p.blockToken()
		c.waiters = append(c.waiters, waiter{p, tok})
		timer := p.eng.ScheduleAt(deadline, func() {
			c.dropWaiter(p, tok)
			p.wake(tok)
		})
		p.block()
		timer.Cancel()
		c.dropWaiter(p, tok) // in case the timer won and a Send raced in later
	}
}

func (c *Chan[T]) dropWaiter(p *Proc, tok uint64) {
	for i, w := range c.waiters {
		if w.p == p && w.tok == tok {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Cond is a broadcast wakeup: processes Wait, any context Broadcasts.
// There is no associated predicate or lock (the simulation is cooperative,
// so callers re-check their condition after waking).
type Cond struct {
	eng     *Engine
	waiters []waiter
}

// NewCond returns a condition bound to e.
func NewCond(e *Engine) *Cond { return &Cond{eng: e} }

// Wait blocks p until the next Broadcast.
func (cv *Cond) Wait(p *Proc) {
	tok := p.blockToken()
	cv.waiters = append(cv.waiters, waiter{p, tok})
	p.block()
}

// HasWaiters reports whether any process is currently waiting.
func (cv *Cond) HasWaiters() bool { return len(cv.waiters) > 0 }

// Broadcast wakes every currently waiting process.
func (cv *Cond) Broadcast() {
	ws := cv.waiters
	cv.waiters = nil
	for _, w := range ws {
		w := w
		cv.eng.Schedule(0, func() { w.p.wake(w.tok) })
	}
}

// Barrier blocks n processes until all have arrived, then releases them
// together. It is reusable (generation-counted).
type Barrier struct {
	n       int
	arrived int
	cond    *Cond
	gen     uint64
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(e *Engine, n int) *Barrier {
	return &Barrier{n: n, cond: NewCond(e)}
}

// Await blocks p until all n participants have called Await.
func (b *Barrier) Await(p *Proc) {
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for b.gen == gen {
		b.cond.Wait(p)
	}
}
