package sim

import (
	"fmt"
	"time"
)

// errKilled is the sentinel panicked inside a process goroutine when the
// engine shuts down; the process runner recovers it.
type errKilled struct{}

// Proc is a cooperative simulated process. A Proc runs on its own
// goroutine but only ever executes while the engine has handed it control,
// so at most one Proc (or event callback) runs at any instant and the
// simulation stays deterministic.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	eng     *Engine
	name    string
	resume  chan bool // value: killed
	blocked bool
	wantSeq uint64
	seq     uint64
	done    bool
}

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Go spawns a new process. fn starts executing at the current simulated
// time (after already-queued events at this time). Go may be called from
// engine context or from another process.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan bool)}
	e.procs[p] = struct{}{}
	e.Schedule(0, func() { p.start(fn) })
	return p
}

// start launches the process goroutine and hands it control. Engine
// context only.
func (p *Proc) start(fn func(p *Proc)) {
	go func() {
		defer func() {
			p.done = true
			delete(p.eng.procs, p)
			if r := recover(); r != nil {
				if _, ok := r.(errKilled); !ok {
					// Real bug in simulation code: re-raise it on the
					// engine goroutine so it reaches the caller of Run.
					p.eng.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
				}
			}
			p.eng.sync <- struct{}{}
		}()
		fn(p)
	}()
	p.eng.waitProc()
}

// block yields control to the engine until wake is called with the
// matching sequence token. It must be called from the process goroutine.
func (p *Proc) block() {
	p.seq++
	p.wantSeq = p.seq
	p.blocked = true
	p.eng.sync <- struct{}{}
	killed := <-p.resume
	if killed {
		panic(errKilled{})
	}
}

// blockToken prepares a wake token without blocking yet; used by waiters
// that must register themselves before yielding.
func (p *Proc) blockToken() uint64 {
	return p.seq + 1
}

// wake resumes a blocked process if it is still waiting on token seq.
// Engine context only (typically from a scheduled event).
func (p *Proc) wake(seq uint64) {
	if !p.blocked || p.wantSeq != seq {
		return // stale wake: the proc moved on (e.g. a timeout fired first)
	}
	p.blocked = false
	p.resume <- false
	p.eng.waitProc()
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	tok := p.blockToken()
	p.eng.Schedule(d, func() { p.wake(tok) })
	p.block()
}

// SleepUntil suspends the process until absolute time t (no-op if t is in
// the past).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.Sleep(t.Sub(p.eng.now))
}

// Yield gives other ready events/processes scheduled at the current time a
// chance to run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }
