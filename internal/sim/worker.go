package sim

import "time"

// YieldStrategy selects how a polling thread behaves when it has no work,
// mirroring Palacios's selectable yield strategy (paper Sect. 4.8). The
// strategy determines the latency between work arriving at an idle worker
// and the worker starting it, and how much CPU the worker burns while
// idle.
type YieldStrategy int

const (
	// YieldImmediate polls continuously, yielding the core only to ready
	// competitors: lowest wake latency, highest CPU burn.
	YieldImmediate YieldStrategy = iota
	// YieldTimed sleeps for TSleep between polls: lowest CPU burn, wake
	// latency up to TSleep.
	YieldTimed
	// YieldAdaptive polls like YieldImmediate until the thread has been
	// workless for TNoWork, then behaves like YieldTimed.
	YieldAdaptive
)

func (y YieldStrategy) String() string {
	switch y {
	case YieldImmediate:
		return "immediate"
	case YieldTimed:
		return "timed"
	case YieldAdaptive:
		return "adaptive"
	default:
		return "unknown"
	}
}

// WorkerConfig parameterizes a Worker.
type WorkerConfig struct {
	Yield   YieldStrategy
	TSleep  time.Duration // timed-yield sleep interval
	TNoWork time.Duration // adaptive threshold before switching to timed
}

type work struct {
	cost time.Duration
	fn   func()
}

// Worker models a single kernel thread (e.g. a packet dispatcher or the
// bridge thread) pinned to its own core: a FIFO work queue executed
// serially, with a wake-up latency governed by the yield strategy when
// work arrives while the worker is idle.
type Worker struct {
	eng  *Engine
	cfg  WorkerConfig
	q    []work
	busy bool
	// lastWork is when the worker last finished an item (for the adaptive
	// strategy and idle accounting).
	lastWork Time
	// idleSince anchors the timed-yield tick grid.
	idleSince Time

	// Stats
	Items     uint64
	BusyTime  time.Duration
	IdleWakes uint64 // transitions from idle to busy
}

// pollCheckCost approximates one poll-loop iteration's CPU cost, used by
// AwakeTime.
const pollCheckCost = 200 * time.Nanosecond

// AwakeTime estimates how much CPU the worker's thread has consumed up to
// now, including the polling burn its yield strategy implies (paper
// Sect. 4.8's latency-versus-CPU tradeoff): an immediate-yield thread
// spins whenever it lacks work; a timed-yield thread wakes only at TSleep
// ticks; an adaptive thread spins for TNoWork after each idle transition
// and then ticks.
func (w *Worker) AwakeTime(now Time) time.Duration {
	elapsed := now.Duration()
	idle := elapsed - w.BusyTime
	if idle < 0 {
		idle = 0
	}
	switch w.cfg.Yield {
	case YieldImmediate:
		return elapsed
	case YieldTimed:
		checks := time.Duration(idle/w.cfg.TSleep) * pollCheckCost
		return w.BusyTime + checks
	case YieldAdaptive:
		spin := time.Duration(w.IdleWakes) * w.cfg.TNoWork
		if spin > idle {
			spin = idle
		}
		checks := time.Duration((idle-spin)/w.cfg.TSleep) * pollCheckCost
		return w.BusyTime + spin + checks
	}
	return w.BusyTime
}

// NewWorker returns an idle worker bound to e.
func NewWorker(e *Engine, cfg WorkerConfig) *Worker {
	if cfg.TSleep <= 0 {
		cfg.TSleep = time.Millisecond
	}
	return &Worker{eng: e, cfg: cfg}
}

// wakeDelay reports how long an idle worker takes to notice newly arrived
// work, per the yield strategy.
func (w *Worker) wakeDelay() time.Duration {
	switch w.cfg.Yield {
	case YieldImmediate:
		return 0
	case YieldTimed:
		return w.timedRemainder()
	case YieldAdaptive:
		if w.eng.now.Sub(w.lastWork) < w.cfg.TNoWork {
			return 0
		}
		return w.timedRemainder()
	}
	return 0
}

// timedRemainder is the time until the next poll tick of the TSleep grid
// anchored at idleSince: the worker wakes only at those ticks.
func (w *Worker) timedRemainder() time.Duration {
	elapsed := w.eng.now.Sub(w.idleSince)
	rem := w.cfg.TSleep - elapsed%w.cfg.TSleep
	return rem
}

// Submit enqueues a work item costing cost of worker time; fn runs when the
// item completes. Submit may be called from any simulation context.
func (w *Worker) Submit(cost time.Duration, fn func()) {
	w.q = append(w.q, work{cost, fn})
	if !w.busy {
		w.busy = true
		w.IdleWakes++
		w.eng.Schedule(w.wakeDelay(), w.runNext)
	}
}

// Backlog reports the number of items waiting (including the running one).
func (w *Worker) Backlog() int { return len(w.q) }

func (w *Worker) runNext() {
	if len(w.q) == 0 {
		w.busy = false
		w.lastWork = w.eng.now
		w.idleSince = w.eng.now
		return
	}
	item := w.q[0]
	w.q = w.q[1:]
	w.Items++
	w.BusyTime += item.cost
	w.eng.Schedule(item.cost, func() {
		if item.fn != nil {
			item.fn()
		}
		w.runNext()
	})
}
