package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLinkTxTime(t *testing.T) {
	e := New()
	l := NewLink(e, 125e6, 0) // 1 Gbps
	if got := l.TxTime(1500); got != 12*time.Microsecond {
		t.Fatalf("1500B @ 1Gbps = %v, want 12µs", got)
	}
	inf := NewLink(e, 0, 0)
	if inf.TxTime(1<<20) != 0 {
		t.Fatal("infinite link has nonzero tx time")
	}
}

func TestLinkDelivery(t *testing.T) {
	e := New()
	l := NewLink(e, 1e9, 10*time.Microsecond) // 1 GB/s, 10µs prop
	var at Time
	l.Transmit(1000, func() { at = e.Now() })
	e.Run()
	// 1000B at 1GB/s = 1µs serialize + 10µs propagation.
	if at != Time(11*time.Microsecond) {
		t.Fatalf("delivered at %v, want 11µs", at)
	}
}

func TestLinkSerialization(t *testing.T) {
	e := New()
	l := NewLink(e, 1e9, 0)
	var times []Time
	for i := 0; i < 3; i++ {
		l.Transmit(1000, func() { times = append(times, e.Now()) })
	}
	e.Run()
	// Back-to-back packets serialize: arrivals at 1µs, 2µs, 3µs.
	want := []Time{Time(time.Microsecond), Time(2 * time.Microsecond), Time(3 * time.Microsecond)}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("arrivals %v, want %v", times, want)
		}
	}
}

func TestLinkQueueDelay(t *testing.T) {
	e := New()
	l := NewLink(e, 1e9, 0)
	if l.QueueDelay() != 0 {
		t.Fatal("idle link has queue delay")
	}
	l.Transmit(10000, nil) // 10µs
	if l.QueueDelay() != 10*time.Microsecond {
		t.Fatalf("queue delay = %v, want 10µs", l.QueueDelay())
	}
	e.Run()
	if l.QueueDelay() != 0 {
		t.Fatal("drained link still has queue delay")
	}
}

func TestLinkStats(t *testing.T) {
	e := New()
	l := NewLink(e, 1e9, 0)
	l.Transmit(500, nil)
	l.Transmit(1500, nil)
	e.Run()
	if l.TxPackets != 2 || l.TxBytes != 2000 {
		t.Fatalf("stats = %d pkts %d bytes, want 2/2000", l.TxPackets, l.TxBytes)
	}
	if l.BusyTime != 2*time.Microsecond {
		t.Fatalf("busy = %v, want 2µs", l.BusyTime)
	}
	if u := l.Utilization(); u <= 0.99 || u > 1.0 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
}

// Property: a link never reorders deliveries, regardless of packet sizes
// and submission gaps.
func TestLinkNoReorderProperty(t *testing.T) {
	prop := func(sizes []uint16, gaps []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		e := New()
		l := NewLink(e, 5e8, 3*time.Microsecond)
		var order []int
		e.Go("tx", func(p *Proc) {
			for i, s := range sizes {
				i := i
				l.Transmit(int(s)+1, func() { order = append(order, i) })
				if len(gaps) > 0 {
					p.Sleep(time.Duration(gaps[i%len(gaps)]))
				}
			}
		})
		e.Run()
		e.Close()
		if len(order) != len(sizes) {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: total delivery time is never less than sum of serialization
// times (work conservation lower bound).
func TestLinkWorkConservationProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		e := New()
		l := NewLink(e, 1e9, 0)
		var last Time
		var total time.Duration
		for _, s := range sizes {
			n := int(s) + 1
			total += l.TxTime(n)
			l.Transmit(n, func() { last = e.Now() })
		}
		e.Run()
		return last.Duration() >= total-time.Nanosecond*time.Duration(len(sizes))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
