package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30*time.Nanosecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Nanosecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30) {
		t.Fatalf("now = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestEngineCancelIdempotent(t *testing.T) {
	e := New()
	ev := e.Schedule(10, func() {})
	ev.Cancel()
	ev.Cancel()
	var nilEv *Event
	nilEv.Cancel() // must not panic
	e.Run()
}

func TestEngineNestedSchedule(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(10, func() {
		e.Schedule(5, func() { at = e.Now() })
	})
	e.Run()
	if at != Time(15) {
		t.Fatalf("nested event at %v, want 15ns", at)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(50, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(-5*time.Second, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%v", ran, e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []Time
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.RunUntil(25)
	if len(got) != 2 {
		t.Fatalf("executed %d events by t=25, want 2", len(got))
	}
	if e.Now() != 25 {
		t.Fatalf("now = %v, want 25", e.Now())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("executed %d events total, want 4", len(got))
	}
}

func TestRunFor(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(10, func() { n++ })
	e.Schedule(30, func() { n++ })
	e.RunFor(20 * time.Nanosecond)
	if n != 1 || e.Now() != 20 {
		t.Fatalf("n=%d now=%v, want 1, 20ns", n, e.Now())
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1000)
	if tm.Add(500*time.Nanosecond) != Time(1500) {
		t.Error("Add")
	}
	if tm.Sub(Time(400)) != 600*time.Nanosecond {
		t.Error("Sub")
	}
	if Time(2e9).Seconds() != 2.0 {
		t.Error("Seconds")
	}
}

// Property: for any set of delays, events execute in nondecreasing time
// order and ties break in schedule order.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New()
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, d := range delays {
			i, d := i, d
			e.Schedule(time.Duration(d), func() { got = append(got, rec{e.Now(), i}) })
		}
		e.Run()
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The engine must produce an identical event trace across runs of the same
// program (determinism is what makes the performance results reproducible).
func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := New()
		var trace []uint64
		e.Trace = func(tm Time, seq uint64) { trace = append(trace, uint64(tm)<<16|seq&0xffff) }
		ch := NewChan[int](e)
		for i := 0; i < 4; i++ {
			i := i
			e.Go("producer", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(10 * (i + 1)))
					ch.Send(i*10 + j)
				}
			})
		}
		e.Go("consumer", func(p *Proc) {
			for k := 0; k < 20; k++ {
				ch.Recv(p)
			}
		})
		e.Run()
		e.Close()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
