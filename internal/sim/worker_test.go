package sim

import (
	"testing"
	"time"
)

func TestWorkerImmediateYield(t *testing.T) {
	e := New()
	w := NewWorker(e, WorkerConfig{Yield: YieldImmediate})
	var done []Time
	e.Go("submit", func(p *Proc) {
		p.Sleep(100)
		w.Submit(10, func() { done = append(done, e.Now()) })
	})
	e.Run()
	if len(done) != 1 || done[0] != 110 {
		t.Fatalf("done = %v, want [110] (no wake latency)", done)
	}
}

func TestWorkerTimedYield(t *testing.T) {
	e := New()
	w := NewWorker(e, WorkerConfig{Yield: YieldTimed, TSleep: 100 * time.Nanosecond})
	var done Time
	e.Go("submit", func(p *Proc) {
		p.Sleep(30)
		w.Submit(10, func() { done = e.Now() })
	})
	e.Run()
	// Worker idle since t=0, tick grid at 100,200,...: work arrives at 30,
	// picked up at 100, completes at 110.
	if done != 110 {
		t.Fatalf("done at %v, want 110 (timed wake at next tick)", done)
	}
}

func TestWorkerAdaptiveYield(t *testing.T) {
	e := New()
	w := NewWorker(e, WorkerConfig{
		Yield:   YieldAdaptive,
		TSleep:  1000 * time.Nanosecond,
		TNoWork: 500 * time.Nanosecond,
	})
	var first, second Time
	e.Go("submit", func(p *Proc) {
		// Recently active (lastWork=0, now=100 < TNoWork): immediate.
		p.Sleep(100)
		w.Submit(10, func() { first = e.Now() })
		// Long idle (> TNoWork since last work at 110): timed.
		p.Sleep(2000)
		w.Submit(10, func() { second = e.Now() })
	})
	e.Run()
	if first != 110 {
		t.Fatalf("first done at %v, want 110 (adaptive-immediate)", first)
	}
	// Second submitted at 2100; worker idle since 110, grid 1110, 2110...
	// so picked up at 2110, done 2120.
	if second != 2120 {
		t.Fatalf("second done at %v, want 2120 (adaptive-timed)", second)
	}
}

func TestWorkerFIFOAndSerial(t *testing.T) {
	e := New()
	w := NewWorker(e, WorkerConfig{Yield: YieldImmediate})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		w.Submit(10, func() { order = append(order, i) })
	}
	if w.Backlog() != 5 {
		t.Fatalf("backlog = %d, want 5", w.Backlog())
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v", order)
		}
	}
	// Serial execution: 5 items × 10ns each.
	if e.Now() != 50 {
		t.Fatalf("finished at %v, want 50", e.Now())
	}
}

func TestWorkerStats(t *testing.T) {
	e := New()
	w := NewWorker(e, WorkerConfig{Yield: YieldImmediate})
	w.Submit(30, nil)
	w.Submit(20, nil)
	e.Run()
	if w.Items != 2 || w.BusyTime != 50 {
		t.Fatalf("items=%d busy=%v, want 2/50ns", w.Items, w.BusyTime)
	}
}

func TestWorkerResubmitFromCompletion(t *testing.T) {
	e := New()
	w := NewWorker(e, WorkerConfig{Yield: YieldImmediate})
	count := 0
	var loop func()
	loop = func() {
		count++
		if count < 10 {
			w.Submit(5, loop)
		}
	}
	w.Submit(5, loop)
	e.Run()
	if count != 10 || e.Now() != 50 {
		t.Fatalf("count=%d now=%v, want 10 at 50ns", count, e.Now())
	}
}

func TestWorkerAwakeTime(t *testing.T) {
	e := New()
	const tsleep = 100 * time.Microsecond
	mk := func(y YieldStrategy) *Worker {
		return NewWorker(e, WorkerConfig{Yield: y, TSleep: tsleep, TNoWork: 500 * time.Microsecond})
	}
	imm, timed, adpt := mk(YieldImmediate), mk(YieldTimed), mk(YieldAdaptive)
	for _, w := range []*Worker{imm, timed, adpt} {
		w.Submit(50*time.Microsecond, nil)
	}
	e.RunFor(10 * time.Millisecond)
	now := e.Now()
	if got := imm.AwakeTime(now); got != 10*time.Millisecond {
		t.Errorf("immediate awake = %v, want full 10ms (always polling)", got)
	}
	tAwake := timed.AwakeTime(now)
	if tAwake >= time.Millisecond || tAwake < 50*time.Microsecond {
		t.Errorf("timed awake = %v, want small (busy + sparse checks)", tAwake)
	}
	aAwake := adpt.AwakeTime(now)
	if aAwake <= tAwake || aAwake >= imm.AwakeTime(now) {
		t.Errorf("adaptive awake = %v, want between timed %v and immediate", aAwake, tAwake)
	}
	if imm.IdleWakes != 1 {
		t.Errorf("idle wakes = %d, want 1", imm.IdleWakes)
	}
}

func TestYieldStrategyString(t *testing.T) {
	if YieldImmediate.String() != "immediate" || YieldTimed.String() != "timed" ||
		YieldAdaptive.String() != "adaptive" || YieldStrategy(99).String() != "unknown" {
		t.Fatal("YieldStrategy.String mismatch")
	}
}
