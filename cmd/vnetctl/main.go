// Command vnetctl speaks the VNET/U-compatible control language to a
// running vnetpd's control console.
//
// Usage:
//
//	vnetctl -server 127.0.0.1:7778 ADD LINK to-b REMOTE 10.0.0.2:7777
//	vnetctl -server 127.0.0.1:7778 LIST ROUTES
//	vnetctl -server 127.0.0.1:7778 -script overlay.conf
//
// Live tracing (see DESIGN.md "Packet tracing and flight recorder"):
//
//	vnetctl -server 127.0.0.1:7778 TRACE START SAMPLE 1024
//	vnetctl -server 127.0.0.1:7778 TRACE START FLOW 02:56:00:00:00:01
//	vnetctl -server 127.0.0.1:7778 TRACE DUMP
//	vnetctl -server 127.0.0.1:7778 TRACE STOP
//
// Dispatch tuning (see DESIGN.md "Adaptive dispatch"):
//
//	vnetctl -server 127.0.0.1:7778 LIST TUNING
//	vnetctl -server 127.0.0.1:7778 LINK TUNE to-b THROUGHPUT
//	vnetctl -server 127.0.0.1:7778 LINK TUNE to-b AUTO
//
// Every request is bounded by -timeout; transport failures on
// idempotent commands (LIST/LINK/TRACE/ADD LINK) are retried with
// jittered backoff, so a momentarily busy console does not fail a
// monitoring script.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"vnetp/internal/control"
)

func main() {
	server := flag.String("server", "127.0.0.1:7778", "control console address")
	script := flag.String("script", "", "send every line of this file")
	timeout := flag.Duration("timeout", 5*time.Second, "per-command request timeout (connect is bounded separately)")
	flag.Parse()

	client := control.NewClient(*server, control.ClientConfig{
		RequestTimeout: *timeout,
	})

	// send runs one command and prints the response in the wire format
	// the console itself uses (payload lines, then OK or ERR <msg>), so
	// existing output-scraping scripts keep working.
	send := func(line string) bool {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			return true
		}
		payload, err := client.Do(line)
		for _, l := range payload {
			fmt.Println(l)
		}
		if err != nil {
			if se, ok := err.(*control.ServerError); ok {
				fmt.Println("ERR " + se.Msg)
			} else {
				log.Fatalf("vnetctl: %v", err)
			}
			return false
		}
		fmt.Println("OK")
		return true
	}

	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			log.Fatalf("vnetctl: %v", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if !send(sc.Text()) {
				os.Exit(1)
			}
		}
		return
	}
	if flag.NArg() == 0 {
		log.Fatal("vnetctl: no command given (and no -script)")
	}
	if !send(strings.Join(flag.Args(), " ")) {
		os.Exit(1)
	}
}
