// Command vnetctl speaks the VNET/U-compatible control language to a
// running vnetpd's control console.
//
// Usage:
//
//	vnetctl -server 127.0.0.1:7778 ADD LINK to-b REMOTE 10.0.0.2:7777
//	vnetctl -server 127.0.0.1:7778 LIST ROUTES
//	vnetctl -server 127.0.0.1:7778 -script overlay.conf
//
// Live tracing (see DESIGN.md "Packet tracing and flight recorder"):
//
//	vnetctl -server 127.0.0.1:7778 TRACE START SAMPLE 1024
//	vnetctl -server 127.0.0.1:7778 TRACE START FLOW 02:56:00:00:00:01
//	vnetctl -server 127.0.0.1:7778 TRACE DUMP
//	vnetctl -server 127.0.0.1:7778 TRACE STOP
//
// Dispatch tuning (see DESIGN.md "Adaptive dispatch"):
//
//	vnetctl -server 127.0.0.1:7778 LIST TUNING
//	vnetctl -server 127.0.0.1:7778 LINK TUNE to-b THROUGHPUT
//	vnetctl -server 127.0.0.1:7778 LINK TUNE to-b AUTO
//
// Secure overlays (see DESIGN.md "Sealed links and tenancy"):
//
//	vnetctl keygen -dir certs -ca vnetp -hosts node-a,node-b,operator
//	vnetctl newkey
//	vnetctl -server 127.0.0.1:7778 \
//	        -tls-cert certs/operator.pem -tls-key certs/operator-key.pem \
//	        -tls-ca certs/ca.pem -tls-server-name node-a \
//	        ADD TENANT 7 KEY <hex>
//
// keygen mints (or reuses) a CA and per-host mTLS certificates; newkey
// prints a fresh tenant AEAD key. The -tls-* flags dial the console over
// mutual TLS — required once the daemon runs with -control-tls-*.
//
// Diagnostics (see DESIGN.md "Introspection and drop ledger"):
//
//	vnetctl diag -addr 127.0.0.1:9090
//
// diag fetches the one-shot snapshot bundle from the daemon's telemetry
// listener (GET /diag) and streams the JSON document to stdout — one
// capture for a bug report instead of five separate scrapes.
//
// Every request is bounded by -timeout; transport failures on
// idempotent commands (LIST/LINK/TRACE/ADD LINK/ADD TENANT) are retried
// with jittered backoff, so a momentarily busy console does not fail a
// monitoring script.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/seal"
	"vnetp/internal/seal/pki"
)

// runKeygen is the `vnetctl keygen` subcommand: mint (or reuse) a CA in
// -dir and issue one mTLS certificate per -hosts entry.
func runKeygen(args []string) {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	dir := fs.String("dir", "certs", "output directory for PEM files (created if missing)")
	caCN := fs.String("ca", "vnetp", "CA common name (reused if ca.pem already exists in -dir)")
	hosts := fs.String("hosts", "", "comma-separated host names to issue certificates for")
	fs.Parse(args)
	if *hosts == "" {
		log.Fatal("vnetctl keygen: -hosts is required")
	}
	written, err := pki.Keygen(*dir, *caCN, strings.Split(*hosts, ","))
	if err != nil {
		log.Fatalf("vnetctl keygen: %v", err)
	}
	for _, f := range written {
		fmt.Println(f)
	}
}

// runDiag is the `vnetctl diag` subcommand: fetch the diagnostic
// snapshot bundle from a daemon's telemetry listener and stream the
// JSON to stdout, ready to attach to a bug report.
func runDiag(args []string) {
	fs := flag.NewFlagSet("diag", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "daemon telemetry address (the -telemetry-addr vnetpd was started with)")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	fs.Parse(args)
	cl := &http.Client{Timeout: *timeout}
	resp, err := cl.Get("http://" + *addr + "/diag")
	if err != nil {
		log.Fatalf("vnetctl diag: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("vnetctl diag: %s returned %s", *addr, resp.Status)
	}
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		log.Fatalf("vnetctl diag: %v", err)
	}
}

// runNewkey prints one fresh tenant AEAD key in ADD TENANT hex form —
// to stdout only, never logged.
func runNewkey() {
	key, err := seal.NewKey()
	if err != nil {
		log.Fatalf("vnetctl newkey: %v", err)
	}
	fmt.Println(hex.EncodeToString(key))
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "keygen":
			runKeygen(os.Args[2:])
			return
		case "newkey":
			runNewkey()
			return
		case "diag":
			runDiag(os.Args[2:])
			return
		}
	}
	server := flag.String("server", "127.0.0.1:7778", "control console address")
	script := flag.String("script", "", "send every line of this file")
	timeout := flag.Duration("timeout", 5*time.Second, "per-command request timeout (connect is bounded separately)")
	tlsCert := flag.String("tls-cert", "", "client certificate for mutual TLS (PEM; with -tls-key and -tls-ca)")
	tlsKey := flag.String("tls-key", "", "client private key (PEM)")
	tlsCA := flag.String("tls-ca", "", "CA certificate the daemon's cert must chain to (PEM)")
	tlsServerName := flag.String("tls-server-name", "", "expected server certificate name (default: host part of -server)")
	flag.Parse()

	cfg := control.ClientConfig{RequestTimeout: *timeout}
	if *tlsCert != "" || *tlsKey != "" || *tlsCA != "" {
		name := *tlsServerName
		if name == "" {
			name = *server
			if host, _, ok := strings.Cut(name, ":"); ok {
				name = host
			}
		}
		tc, err := pki.LoadClientConfig(*tlsCert, *tlsKey, *tlsCA, name)
		if err != nil {
			log.Fatalf("vnetctl: TLS setup failed (need all of -tls-cert/-key/-ca): %v", err)
		}
		cfg.TLS = tc
	}
	client := control.NewClient(*server, cfg)

	// send runs one command and prints the response in the wire format
	// the console itself uses (payload lines, then OK or ERR <msg>), so
	// existing output-scraping scripts keep working.
	send := func(line string) bool {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			return true
		}
		payload, err := client.Do(line)
		for _, l := range payload {
			fmt.Println(l)
		}
		if err != nil {
			if se, ok := err.(*control.ServerError); ok {
				fmt.Println("ERR " + se.Msg)
			} else {
				log.Fatalf("vnetctl: %v", err)
			}
			return false
		}
		fmt.Println("OK")
		return true
	}

	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			log.Fatalf("vnetctl: %v", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if !send(sc.Text()) {
				os.Exit(1)
			}
		}
		return
	}
	if flag.NArg() == 0 {
		log.Fatal("vnetctl: no command given (and no -script)")
	}
	if !send(strings.Join(flag.Args(), " ")) {
		os.Exit(1)
	}
}
