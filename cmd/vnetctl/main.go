// Command vnetctl speaks the VNET/U-compatible control language to a
// running vnetpd's control console.
//
// Usage:
//
//	vnetctl -server 127.0.0.1:7778 ADD LINK to-b REMOTE 10.0.0.2:7777
//	vnetctl -server 127.0.0.1:7778 LIST ROUTES
//	vnetctl -server 127.0.0.1:7778 -script overlay.conf
//
// Live tracing (see DESIGN.md "Packet tracing and flight recorder"):
//
//	vnetctl -server 127.0.0.1:7778 TRACE START SAMPLE 1024
//	vnetctl -server 127.0.0.1:7778 TRACE START FLOW 02:56:00:00:00:01
//	vnetctl -server 127.0.0.1:7778 TRACE DUMP
//	vnetctl -server 127.0.0.1:7778 TRACE STOP
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
)

func main() {
	server := flag.String("server", "127.0.0.1:7778", "control console address")
	script := flag.String("script", "", "send every line of this file")
	flag.Parse()

	conn, err := net.Dial("tcp", *server)
	if err != nil {
		log.Fatalf("vnetctl: %v", err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)

	send := func(line string) bool {
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			return true
		}
		if _, err := fmt.Fprintln(conn, line); err != nil {
			log.Fatalf("vnetctl: %v", err)
		}
		ok := true
		for {
			resp, err := rd.ReadString('\n')
			if err != nil {
				log.Fatalf("vnetctl: %v", err)
			}
			resp = strings.TrimRight(resp, "\n")
			fmt.Println(resp)
			if resp == "OK" {
				return ok
			}
			if strings.HasPrefix(resp, "ERR") {
				return false
			}
		}
	}

	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			log.Fatalf("vnetctl: %v", err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			if !send(sc.Text()) {
				os.Exit(1)
			}
		}
		return
	}
	if flag.NArg() == 0 {
		log.Fatal("vnetctl: no command given (and no -script)")
	}
	if !send(strings.Join(flag.Args(), " ")) {
		os.Exit(1)
	}
}
