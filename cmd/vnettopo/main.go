// Command vnettopo generates the control-language scripts that build (or
// tear down) a whole overlay topology across a set of vnetpd nodes — the
// wholesale-topology-construction tooling of the VNET model.
//
// Usage:
//
//	vnettopo -topology mesh \
//	    -host "a/10.0.0.1:7777/02:56:00:00:00:01" \
//	    -host "b/10.0.0.2:7777/02:56:00:00:00:02,02:56:00:00:00:03"
//
// Each -host is name/dataAddr/mac[,mac...]. The output is one script
// section per host, ready to pipe into `vnetctl -script` against that
// host's control console. With -teardown the inverse scripts are emitted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"vnetp/internal/ethernet"
	"vnetp/internal/topo"
)

type hostFlags []string

func (h *hostFlags) String() string     { return strings.Join(*h, ";") }
func (h *hostFlags) Set(v string) error { *h = append(*h, v); return nil }

func main() {
	var hostSpecs hostFlags
	kindName := flag.String("topology", "mesh", "mesh, star, or ring")
	hub := flag.Int("hub", 0, "hub host index for -topology star")
	proto := flag.String("proto", "udp", "link protocol: udp or tcp")
	teardown := flag.Bool("teardown", false, "emit teardown scripts instead")
	flag.Var(&hostSpecs, "host", "host spec name/dataAddr/mac[,mac...] (repeatable)")
	flag.Parse()

	var kind topo.Kind
	switch strings.ToLower(*kindName) {
	case "mesh":
		kind = topo.Mesh
	case "star":
		kind = topo.Star
	case "ring":
		kind = topo.Ring
	default:
		log.Fatalf("vnettopo: unknown topology %q", *kindName)
	}

	hosts := make([]topo.Host, 0, len(hostSpecs))
	for _, spec := range hostSpecs {
		parts := strings.SplitN(spec, "/", 3)
		if len(parts) < 2 {
			log.Fatalf("vnettopo: bad -host %q (want name/addr/mac,...)", spec)
		}
		h := topo.Host{Name: parts[0], Addr: parts[1]}
		if len(parts) == 3 && parts[2] != "" {
			for _, ms := range strings.Split(parts[2], ",") {
				mac, err := ethernet.ParseMAC(strings.TrimSpace(ms))
				if err != nil {
					log.Fatalf("vnettopo: %v", err)
				}
				h.MACs = append(h.MACs, mac)
			}
		}
		hosts = append(hosts, h)
	}

	var scripts map[string][]string
	var err error
	if *teardown {
		scripts, err = topo.Teardown(kind, hosts, *hub)
	} else {
		scripts, err = topo.Scripts(kind, hosts, *hub, *proto)
	}
	if err != nil {
		log.Fatalf("vnettopo: %v", err)
	}
	names := make([]string, 0, len(scripts))
	for name := range scripts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stdout, "# ---- host %s ----\n", name)
		for _, line := range scripts[name] {
			fmt.Println(line)
		}
		fmt.Println()
	}
}
