// Command vnetbench regenerates the paper's evaluation: every table and
// figure (DESIGN.md's per-experiment index) runs as a deterministic
// simulation and prints rows shaped like the paper's.
//
// Usage:
//
//	vnetbench -list
//	vnetbench -exp fig8
//	vnetbench -all
//	vnetbench -json BENCH_microbench.json
//
// The -json mode runs the microbenchmarks and writes a JSON array of
// {id, metric, value, unit} records for CI artifact collection. Besides
// the simulated figures this includes the live "tracebench" sweep: the
// real-socket overlay transmit path with trace sampling off, 1-in-1024,
// and 1-in-16, reported as sampled:off throughput ratios (unit "%") so
// benchguard can gate tracing overhead machine-independently.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vnetp/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	exp := flag.String("exp", "", "run one experiment by ID")
	all := flag.Bool("all", false, "run every experiment")
	jsonPath := flag.String("json", "", "run the microbenchmarks and write JSON records to this path")
	flag.Parse()

	switch {
	case *jsonPath != "":
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatalf("vnetbench: %v", err)
		}
		recs := experiments.CollectMicrobench()
		if err := experiments.WriteJSON(f, recs); err != nil {
			f.Close()
			log.Fatalf("vnetbench: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("vnetbench: %v", err)
		}
		fmt.Printf("vnetbench: wrote %d records to %s\n", len(recs), *jsonPath)
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
	case *exp != "":
		if err := experiments.Run(*exp, os.Stdout); err != nil {
			log.Fatalf("vnetbench: %v", err)
		}
	case *all:
		if err := experiments.RunAll(os.Stdout); err != nil {
			log.Fatalf("vnetbench: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
