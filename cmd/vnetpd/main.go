// Command vnetpd runs a VNET/P overlay node over real UDP sockets: the
// userspace analogue of the in-VMM core + bridge pair, configurable at
// startup from a script and at runtime through the VNET/U-compatible TCP
// control console.
//
// Usage:
//
//	vnetpd -name a -bind 0.0.0.0:7777 -control 127.0.0.1:7778 \
//	       -config overlay.conf -echo nic0:02:56:00:00:00:01
//
// The -echo flag attaches an in-process endpoint that reflects every
// received test frame back to its sender (swapping the MAC addresses), so
// two daemons can be smoke-tested end to end without guests.
//
// Datapath tuning: -tx-batch enables batched transmit, and -adaptive
// layers the paper's Table 1 controller on top — each link switches
// between latency mode (batch=1) and throughput mode (batch=TxBatch) by
// observed packet rate, overridable at runtime with LINK TUNE.
//
// Security: -control-tls-cert/-key/-ca put the control console behind
// mutual TLS (certificates from `vnetctl keygen`); plaintext clients are
// refused outright. -tenant-key installs per-tenant AEAD keys at startup
// so tenant-bound links (ADD LINK ... TENANT n) seal every datagram, and
// -echo accepts an optional @tenant suffix to bind the echo endpoint
// into a tenant's namespace.
//
// Observability: -log-level/-log-format select the structured log output,
// -trace-sample enables 1-in-N live packet tracing at startup (also
// switchable at runtime via the TRACE control verb), and -flight-depth
// arms the per-dispatcher flight recorder. With -telemetry-addr set, the
// HTTP server additionally serves /trace (sampled packet paths, JSON),
// /flight (flight-recorder contents; ?format=pcap downloads a capture),
// /topflows (per-tenant heavy hitters, JSON), and /diag (the one-shot
// diagnostic snapshot bundle `vnetctl diag` fetches). The anomaly
// watchdog is on by default: it samples the unified drop ledger and
// alerts (structured log + counter) when the drop rate crosses
// -anomaly-drop-rate; -anomaly-interval=0 disables it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/ethernet"
	"vnetp/internal/logging"
	"vnetp/internal/overlay"
	"vnetp/internal/seal"
	"vnetp/internal/seal/pki"
	"vnetp/internal/telemetry"
)

func main() {
	name := flag.String("name", "vnetp", "node name")
	bind := flag.String("bind", "127.0.0.1:7777", "UDP address for encapsulated traffic")
	ctrlAddr := flag.String("control", "", "TCP address for the control console (empty: disabled)")
	config := flag.String("config", "", "configuration script applied at startup")
	echo := flag.String("echo", "", "attach an echo endpoint: <ifname>:<mac>")
	dispatchers := flag.Int("dispatchers", 0, "receive dispatcher workers (0: min(4, GOMAXPROCS))")
	txBatch := flag.Int("tx-batch", 1, "frames coalesced per link TX batch (1: synchronous sends)")
	txFlush := flag.Duration("tx-flush", 100*time.Microsecond, "max wait for a partial TX batch (with -tx-batch > 1)")
	adaptive := flag.Bool("adaptive", false, "per-link adaptive dispatch: retune batch size between latency and throughput mode by observed rate (implies batched transmit)")
	flowCache := flag.Bool("flow-cache", true, "per-flow forwarding cache: one lookup plus a header memcpy on the steady-state path (false: per-frame route lookup)")
	rxBatch := flag.Int("rx-batch", 0, "datagrams drained from the UDP socket per wakeup, via recvmmsg where available (0: default 16, 1: one ReadFromUDP per datagram)")
	telemetryAddr := flag.String("telemetry-addr", "", "HTTP address for /metrics, /trace, /flight, /topflows, /diag, /debug/pprof/, /healthz (empty: disabled)")
	anomalyInterval := flag.Duration("anomaly-interval", 5*time.Second, "anomaly watchdog sample period (0: watchdog off)")
	anomalyDropRate := flag.Float64("anomaly-drop-rate", 100, "ledger drops per second that trigger an anomaly alert")
	health := flag.Bool("health", false, "enable the link health monitor (heartbeats, failover, redial)")
	probeInterval := flag.Duration("probe-interval", 200*time.Millisecond, "heartbeat probe interval (with -health)")
	probeFail := flag.Int("probe-fail", 3, "consecutive missed probes before a link is down (with -health)")
	probeRecover := flag.Int("probe-recover", 2, "consecutive replies before a down link is up (with -health)")
	traceSample := flag.Uint64("trace-sample", 0, "sample 1 in N transmitted frames for live tracing (0: off)")
	flightDepth := flag.Int("flight-depth", 0, "flight recorder ring depth per dispatcher (0: off)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	drainTimeout := flag.Duration("drain-timeout", 3*time.Second, "max wait for queued traffic to flush on SIGTERM/SIGINT")
	tlsCert := flag.String("control-tls-cert", "", "control console server certificate (PEM; with -control-tls-key and -control-tls-ca, enables mutual TLS and refuses plaintext clients)")
	tlsKey := flag.String("control-tls-key", "", "control console server private key (PEM)")
	tlsCA := flag.String("control-tls-ca", "", "CA certificate clients must present certs from (PEM)")
	var tenantKeys []string
	flag.Func("tenant-key", "install a tenant AEAD key at startup: <id>:<64-hex-key> (repeatable)", func(v string) error {
		tenantKeys = append(tenantKeys, v)
		return nil
	})
	flag.Parse()
	start := time.Now()

	logger, err := logging.New(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vnetpd: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	node, err := overlay.NewNodeWithConfig(*name, *bind, overlay.NodeConfig{
		Dispatchers:       *dispatchers,
		TxBatch:           *txBatch,
		TxFlushTimeout:    *txFlush,
		Adaptive:          overlay.AdaptiveConfig{Enabled: *adaptive},
		FlowCacheDisabled: !*flowCache,
		RxBatch:           *rxBatch,
		TraceSample:       *traceSample,
		FlightDepth:       *flightDepth,
		Logger:            logger,
		Anomaly: overlay.AnomalyConfig{
			Disabled: *anomalyInterval <= 0,
			Interval: *anomalyInterval,
			DropRate: *anomalyDropRate,
		},
	})
	if err != nil {
		fatal("node startup failed", "err", err)
	}
	defer node.Close()
	logger.Info("vnetpd carrying traffic",
		"node", *name, "addr", node.Addr(), "dispatchers", node.Dispatchers())
	if *txBatch > 1 {
		logger.Info("batched transmit on", "batch", *txBatch, "flush", *txFlush)
	}
	if *adaptive {
		logger.Info("adaptive dispatch on",
			"alpha_l", "1e3/s", "alpha_u", "1e4/s", "omega", 5*time.Millisecond)
	}
	if *traceSample > 0 {
		logger.Info("live tracing on", "sample", fmt.Sprintf("1/%d", *traceSample))
	}
	if *flightDepth > 0 {
		logger.Info("flight recorder armed", "depth", *flightDepth, "dispatchers", node.Dispatchers())
	}

	if *telemetryAddr != "" {
		srv, err := telemetry.ServeWith(*telemetryAddr, node.Telemetry(), map[string]http.Handler{
			"/trace":    node.TraceHandler(),
			"/flight":   node.FlightHandler(),
			"/topflows": node.TopFlowsHandler(),
			"/diag":     node.DiagHandler(),
		})
		if err != nil {
			fatal("telemetry startup failed", "err", err)
		}
		defer srv.Close()
		logger.Info("telemetry serving",
			"metrics", "http://"+srv.Addr()+"/metrics",
			"trace", "http://"+srv.Addr()+"/trace",
			"flight", "http://"+srv.Addr()+"/flight",
			"topflows", "http://"+srv.Addr()+"/topflows",
			"diag", "http://"+srv.Addr()+"/diag")
	}

	if *health {
		cfg := overlay.DefaultHealthConfig()
		cfg.Interval = *probeInterval
		cfg.FailThreshold = *probeFail
		cfg.RecoverThreshold = *probeRecover
		if err := node.EnableHealth(cfg); err != nil {
			fatal("health monitor startup failed", "err", err)
		}
		logger.Info("link health monitor on",
			"probe", cfg.Interval, "fail", cfg.FailThreshold, "recover", cfg.RecoverThreshold)
	}

	for _, tk := range tenantKeys {
		idStr, hexKey, ok := strings.Cut(tk, ":")
		if !ok {
			fatal("-tenant-key wants <id>:<hex-key>")
		}
		id, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil || id == 0 {
			fatal("bad -tenant-key tenant id", "id", idStr)
		}
		key, err := seal.ParseKey(hexKey)
		if err != nil { // seal.ParseKey never echoes the material
			fatal("bad -tenant-key key", "tenant", id, "err", err)
		}
		if err := node.AddTenant(uint32(id), key); err != nil {
			fatal("tenant key install failed", "tenant", id, "err", err)
		}
	}

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fatal("config open failed", "err", err)
		}
		err = control.RunScript(node, f)
		f.Close()
		if err != nil {
			fatal("config apply failed", "config", *config, "err", err)
		}
		logger.Info("config applied",
			"config", *config, "routes", len(node.Routes()), "links", len(node.Links()))
	}

	if *echo != "" {
		spec, tenantStr, hasTenant := strings.Cut(*echo, "@")
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			fatal("-echo wants <ifname>:<mac>[@tenant]", "got", *echo)
		}
		mac, err := ethernet.ParseMAC(parts[1])
		if err != nil {
			fatal("bad -echo MAC", "err", err)
		}
		var tenant uint64
		if hasTenant {
			if tenant, err = strconv.ParseUint(tenantStr, 10, 32); err != nil {
				fatal("bad -echo tenant", "got", tenantStr)
			}
		}
		ep, err := node.AttachEndpointTenant(parts[0], mac, ethernet.JumboMTU, uint32(tenant))
		if err != nil {
			fatal("echo endpoint attach failed", "err", err)
		}
		go echoLoop(ep, logger)
		logger.Info("echo endpoint attached",
			"interface", parts[0], "mac", mac.String(), "tenant", tenant)
	}

	if *ctrlAddr != "" {
		var dcfg control.DaemonConfig
		if *tlsCert != "" || *tlsKey != "" || *tlsCA != "" {
			tc, err := pki.LoadServerConfig(*tlsCert, *tlsKey, *tlsCA)
			if err != nil {
				fatal("control TLS setup failed (need all of -control-tls-cert/-key/-ca)", "err", err)
			}
			dcfg.TLS = tc
		}
		d, err := control.NewDaemonWithConfig(node, *ctrlAddr, dcfg)
		if err != nil {
			fatal("control console startup failed", "err", err)
		}
		defer d.Close()
		logger.Info("control console listening", "addr", d.Addr(), "mtls", dcfg.TLS != nil)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutdown signal received", "signal", s.String(), "drain_timeout", *drainTimeout)

	// Graceful drain: stop admitting local frames, flush every TX ring
	// and dispatcher ring under the deadline, then quiesce. A second
	// signal during the drain aborts the grace period immediately.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	go func() {
		<-sig
		logger.Warn("second signal: aborting drain")
		cancel()
	}()
	stats, err := node.Drain(ctx)
	cancel()
	if err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	logger.Info("shutdown complete",
		"frames_flushed", stats.FramesFlushed,
		"frames_dropped", stats.FramesDropped,
		"partials_dropped", stats.PartialsDropped,
		"drain_elapsed", stats.Elapsed,
		"encap_sent", node.EncapSent.Load(),
		"encap_recv", node.EncapRecv.Load(),
		"delivered", node.Delivered.Load(),
		"uptime", time.Since(start).Round(time.Millisecond))
}

func echoLoop(ep *overlay.Endpoint, logger *slog.Logger) {
	for {
		f, ok := ep.Recv(time.Hour)
		if !ok {
			continue
		}
		reply := *f
		reply.Dst, reply.Src = f.Src, ep.MAC()
		if err := ep.Send(&reply); err != nil {
			logger.Warn("echo reply failed", "err", err)
		}
	}
}
