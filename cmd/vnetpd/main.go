// Command vnetpd runs a VNET/P overlay node over real UDP sockets: the
// userspace analogue of the in-VMM core + bridge pair, configurable at
// startup from a script and at runtime through the VNET/U-compatible TCP
// control console.
//
// Usage:
//
//	vnetpd -name a -bind 0.0.0.0:7777 -control 127.0.0.1:7778 \
//	       -config overlay.conf -echo nic0:02:56:00:00:00:01
//
// The -echo flag attaches an in-process endpoint that reflects every
// received test frame back to its sender (swapping the MAC addresses), so
// two daemons can be smoke-tested end to end without guests.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vnetp/internal/control"
	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/telemetry"
)

func main() {
	name := flag.String("name", "vnetp", "node name")
	bind := flag.String("bind", "127.0.0.1:7777", "UDP address for encapsulated traffic")
	ctrlAddr := flag.String("control", "", "TCP address for the control console (empty: disabled)")
	config := flag.String("config", "", "configuration script applied at startup")
	echo := flag.String("echo", "", "attach an echo endpoint: <ifname>:<mac>")
	dispatchers := flag.Int("dispatchers", 0, "receive dispatcher workers (0: min(4, GOMAXPROCS))")
	txBatch := flag.Int("tx-batch", 1, "frames coalesced per link TX batch (1: synchronous sends)")
	txFlush := flag.Duration("tx-flush", 100*time.Microsecond, "max wait for a partial TX batch (with -tx-batch > 1)")
	telemetryAddr := flag.String("telemetry-addr", "", "HTTP address for /metrics, /debug/pprof/, /healthz (empty: disabled)")
	health := flag.Bool("health", false, "enable the link health monitor (heartbeats, failover, redial)")
	probeInterval := flag.Duration("probe-interval", 200*time.Millisecond, "heartbeat probe interval (with -health)")
	probeFail := flag.Int("probe-fail", 3, "consecutive missed probes before a link is down (with -health)")
	probeRecover := flag.Int("probe-recover", 2, "consecutive replies before a down link is up (with -health)")
	flag.Parse()

	node, err := overlay.NewNodeWithConfig(*name, *bind, overlay.NodeConfig{
		Dispatchers:    *dispatchers,
		TxBatch:        *txBatch,
		TxFlushTimeout: *txFlush,
	})
	if err != nil {
		log.Fatalf("vnetpd: %v", err)
	}
	defer node.Close()
	log.Printf("vnetpd: node %q carrying traffic on %s (%d dispatchers)",
		*name, node.Addr(), node.Dispatchers())
	if *txBatch > 1 {
		log.Printf("vnetpd: batched transmit on (batch %d, flush %v)", *txBatch, *txFlush)
	}

	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, node.Telemetry())
		if err != nil {
			log.Fatalf("vnetpd: telemetry: %v", err)
		}
		defer srv.Close()
		log.Printf("vnetpd: telemetry on http://%s/metrics (pprof under /debug/pprof/)", srv.Addr())
	}

	if *health {
		cfg := overlay.DefaultHealthConfig()
		cfg.Interval = *probeInterval
		cfg.FailThreshold = *probeFail
		cfg.RecoverThreshold = *probeRecover
		if err := node.EnableHealth(cfg); err != nil {
			log.Fatalf("vnetpd: health: %v", err)
		}
		log.Printf("vnetpd: link health monitor on (probe %v, fail %d, recover %d)",
			cfg.Interval, cfg.FailThreshold, cfg.RecoverThreshold)
	}

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			log.Fatalf("vnetpd: %v", err)
		}
		err = control.RunScript(node, f)
		f.Close()
		if err != nil {
			log.Fatalf("vnetpd: config: %v", err)
		}
		log.Printf("vnetpd: applied %s (%d routes, %d links)", *config, len(node.Routes()), len(node.Links()))
	}

	if *echo != "" {
		parts := strings.SplitN(*echo, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("vnetpd: -echo wants <ifname>:<mac>, got %q", *echo)
		}
		mac, err := ethernet.ParseMAC(parts[1])
		if err != nil {
			log.Fatalf("vnetpd: %v", err)
		}
		ep, err := node.AttachEndpoint(parts[0], mac, ethernet.JumboMTU)
		if err != nil {
			log.Fatalf("vnetpd: %v", err)
		}
		go echoLoop(ep)
		log.Printf("vnetpd: echo endpoint %s at %s", parts[0], mac)
	}

	if *ctrlAddr != "" {
		d, err := control.NewDaemon(node, *ctrlAddr)
		if err != nil {
			log.Fatalf("vnetpd: control: %v", err)
		}
		defer d.Close()
		log.Printf("vnetpd: control console on %s", d.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "\nvnetpd: shutting down (encap sent %d, recv %d, delivered %d)\n",
		node.EncapSent.Load(), node.EncapRecv.Load(), node.Delivered.Load())
}

func echoLoop(ep *overlay.Endpoint) {
	for {
		f, ok := ep.Recv(time.Hour)
		if !ok {
			continue
		}
		reply := *f
		reply.Dst, reply.Src = f.Src, ep.MAC()
		if err := ep.Send(&reply); err != nil {
			log.Printf("vnetpd: echo: %v", err)
		}
	}
}
