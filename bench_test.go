package vnetp_test

// One benchmark per table and figure of the paper's evaluation (the
// per-experiment index in DESIGN.md), each regenerating its item through
// the deterministic simulation, plus true micro-benchmarks of the
// datapath primitives. Run:
//
//	go test -bench=. -benchmem
//
// The per-figure benches measure how long regenerating the item takes
// (the simulated results themselves are printed by cmd/vnetbench and
// recorded in EXPERIMENTS.md).

import (
	"io"
	"testing"

	"vnetp"
	"vnetp/internal/bridge"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-figure/table regeneration benches (E1-E14) ---

func BenchmarkFig5_DispatcherScaling(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig8_Throughput(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9_Latency(b *testing.B)             { benchExperiment(b, "fig9") }
func BenchmarkFig10_MPIPingPongLatency(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11_MPIBandwidth(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12_HPCCLatBw(b *testing.B)          { benchExperiment(b, "fig12") }
func BenchmarkFig13_HPCCApps(b *testing.B)           { benchExperiment(b, "fig13") }
func BenchmarkFig14_NAS(b *testing.B)                { benchExperiment(b, "fig14") }
func BenchmarkFig15_IPoIB_LatBw(b *testing.B)        { benchExperiment(b, "fig15") }
func BenchmarkFig16_IPoIB_Apps(b *testing.B)         { benchExperiment(b, "fig16") }
func BenchmarkGemini_Throughput(b *testing.B)        { benchExperiment(b, "gemini") }
func BenchmarkKitten_IB(b *testing.B)                { benchExperiment(b, "kitten") }
func BenchmarkVNETU_Baseline(b *testing.B)           { benchExperiment(b, "vnetu") }

// --- Ablation benches (design choices from Sect. 4.3/4.8) ---

func BenchmarkAblation_Modes(b *testing.B)        { benchExperiment(b, "ablation-modes") }
func BenchmarkAblation_RoutingCache(b *testing.B) { benchExperiment(b, "ablation-cache") }
func BenchmarkAblation_Yield(b *testing.B)        { benchExperiment(b, "ablation-yield") }
func BenchmarkAblation_MTU(b *testing.B)          { benchExperiment(b, "ablation-mtu") }

// --- Datapath primitive micro-benchmarks ---

// BenchmarkRouting_CacheHit measures the common-case constant-time lookup
// the paper's routing cache provides.
func BenchmarkRouting_CacheHit(b *testing.B) {
	t := vnetp.NewRoutingTable()
	dst := vnetp.LocalMAC(2)
	t.AddRoute(vnetp.Route{DstMAC: dst, DstQual: vnetp.QualExact, SrcQual: vnetp.QualAny,
		Dest: vnetp.Destination{Type: vnetp.DestLink, ID: "l"}})
	src := vnetp.LocalMAC(1)
	t.Lookup(src, dst) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := t.Lookup(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouting_CacheMissScan measures the linear-table fallback at a
// large table size.
func BenchmarkRouting_CacheMissScan(b *testing.B) {
	t := vnetp.NewRoutingTable()
	t.CacheEnabled = false
	for i := 0; i < 1024; i++ {
		t.AddRoute(vnetp.Route{DstMAC: vnetp.LocalMAC(uint32(i + 10)), DstQual: vnetp.QualExact,
			SrcQual: vnetp.QualAny, Dest: vnetp.Destination{Type: vnetp.DestLink, ID: "l"}})
	}
	src, dst := vnetp.LocalMAC(1), vnetp.LocalMAC(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := t.Lookup(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameMarshal measures Ethernet frame serialization.
func BenchmarkFrameMarshal(b *testing.B) {
	f := &ethernet.Frame{
		Dst: vnetp.LocalMAC(2), Src: vnetp.LocalMAC(1), Type: ethernet.TypeIPv4,
		Payload: make([]byte, 1500),
	}
	buf := make([]byte, 0, 2048)
	b.SetBytes(int64(f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := f.Marshal(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkEncapsulate measures the bridge's UDP encapsulation of a
// standard frame (single datagram).
func BenchmarkEncapsulate(b *testing.B) {
	f := &ethernet.Frame{
		Dst: vnetp.LocalMAC(2), Src: vnetp.LocalMAC(1), Type: ethernet.TypeIPv4,
		Payload: make([]byte, 1400),
	}
	b.SetBytes(int64(f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bridge.Encapsulate(f, uint32(i), 1472); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncapsulateJumboFragmented measures encapsulation with
// fragmentation (9000-byte guest frame over a 1500-byte path).
func BenchmarkEncapsulateJumboFragmented(b *testing.B) {
	f := &ethernet.Frame{
		Dst: vnetp.LocalMAC(2), Src: vnetp.LocalMAC(1), Type: ethernet.TypeIPv4,
		Payload: make([]byte, 9000),
	}
	b.SetBytes(int64(f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bridge.Encapsulate(f, uint32(i), 1472); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReassemble measures the receive-side reassembly path.
func BenchmarkReassemble(b *testing.B) {
	f := &ethernet.Frame{
		Dst: vnetp.LocalMAC(2), Src: vnetp.LocalMAC(1), Type: ethernet.TypeIPv4,
		Payload: make([]byte, 9000),
	}
	datagrams, err := bridge.Encapsulate(f, 1, 1472)
	if err != nil {
		b.Fatal(err)
	}
	r := bridge.NewReassembler()
	b.SetBytes(int64(f.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got *ethernet.Frame
		for _, d := range datagrams {
			g, err := r.Add("peer", d)
			if err != nil {
				b.Fatal(err)
			}
			if g != nil {
				got = g
			}
		}
		if got == nil {
			b.Fatal("no frame")
		}
	}
}

// BenchmarkAdaptiveModeLogic measures the per-packet cost of the rate
// bookkeeping behind adaptive operation.
func BenchmarkAdaptiveModeLogic(b *testing.B) {
	eng := vnetp.NewSimEngine()
	tb := vnetp.NewVNETPTestbed(eng, vnetp.ClusterConfig{
		Dev: vnetp.Eth10G, N: 2, Params: vnetp.DefaultParams(),
	})
	node := tb.VNETP.Nodes[0]
	f := &ethernet.Frame{Dst: tb.VNETP.Nodes[1].MAC(), Src: node.MAC(), Type: ethernet.TypeTest, Pad: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.Iface.TrySend(f)
		eng.RunFor(0)
		node.NIC.TX.PopBatch(0) // keep the ring from filling
	}
	b.StopTimer()
	eng.Close()
	_ = core.GuestDriven
}
