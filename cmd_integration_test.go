package vnetp_test

// End-to-end test of the CLI tools: build vnetpd and vnetctl, bring up a
// two-daemon overlay over loopback, configure it through the control
// console, and verify the echo endpoint reflects frames across the
// overlay (driven by an in-process node speaking the same wire format).

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vnetp"
)

func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// freePort reserves an ephemeral TCP port number.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

func waitForTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.Dial("tcp", addr); err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon never listened on %s", addr)
}

func TestCLIOverlayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	vnetpd := buildTool(t, dir, "./cmd/vnetpd")
	vnetctl := buildTool(t, dir, "./cmd/vnetctl")

	dataPort := freePort(t)
	ctrlPort := freePort(t)
	echoMAC := "02:56:00:00:00:aa"
	daemon := exec.Command(vnetpd,
		"-name", "echo-host",
		"-bind", fmt.Sprintf("127.0.0.1:%d", dataPort),
		"-control", fmt.Sprintf("127.0.0.1:%d", ctrlPort),
		"-echo", "nic0:"+echoMAC,
	)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	ctrlAddr := fmt.Sprintf("127.0.0.1:%d", ctrlPort)
	waitForTCP(t, ctrlAddr)

	// An in-process node plays the remote side.
	local, err := vnetp.NewNode("local", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	myMAC := vnetp.LocalMAC(5)
	ep, err := local.AttachEndpoint("nic0", myMAC, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.AddLink("to-echo", fmt.Sprintf("127.0.0.1:%d", dataPort), "udp"); err != nil {
		t.Fatal(err)
	}
	mac, _ := vnetp.ParseMAC(echoMAC)
	local.AddRoute(vnetp.Route{DstMAC: mac, DstQual: vnetp.QualExact, SrcQual: vnetp.QualAny,
		Dest: vnetp.Destination{Type: vnetp.DestLink, ID: "to-echo"}})

	// Configure the daemon's return path through vnetctl.
	run := func(args ...string) string {
		out, err := exec.Command(vnetctl, append([]string{"-server", ctrlAddr}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("vnetctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	run("ADD", "LINK", "back", "REMOTE", local.Addr())
	run("ADD", "ROUTE", myMAC.String(), "any", "link", "back")
	if out := run("LIST", "ROUTES"); !strings.Contains(out, myMAC.String()) {
		t.Fatalf("LIST ROUTES missing route:\n%s", out)
	}
	if out := run("LIST", "INTERFACES"); !strings.Contains(out, "nic0") {
		t.Fatalf("LIST INTERFACES missing echo endpoint:\n%s", out)
	}

	// Send a frame to the echo endpoint; it must come back with the MACs
	// swapped.
	payload := []byte("cli round trip")
	if err := ep.Send(&vnetp.Frame{Dst: mac, Src: myMAC, Type: 0x88b5, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got, ok := ep.Recv(5 * time.Second)
	if !ok {
		t.Fatal("echo reply never arrived through the daemon")
	}
	if string(got.Payload) != string(payload) || got.Src != mac {
		t.Fatalf("echo reply mangled: %v %q", got, got.Payload)
	}
}

func TestCLIVnetctlScript(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	vnetpd := buildTool(t, dir, "./cmd/vnetpd")
	vnetctl := buildTool(t, dir, "./cmd/vnetctl")

	dataPort := freePort(t)
	ctrlPort := freePort(t)
	daemon := exec.Command(vnetpd,
		"-bind", fmt.Sprintf("127.0.0.1:%d", dataPort),
		"-control", fmt.Sprintf("127.0.0.1:%d", ctrlPort))
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	ctrlAddr := fmt.Sprintf("127.0.0.1:%d", ctrlPort)
	waitForTCP(t, ctrlAddr)

	script := filepath.Join(dir, "setup.conf")
	content := `# test script
ADD LINK l1 REMOTE 127.0.0.1:19999
ADD ROUTE 02:56:00:00:00:01 any link l1
ADD ROUTE any any link l1
`
	if err := os.WriteFile(script, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(vnetctl, "-server", ctrlAddr, "-script", script).CombinedOutput()
	if err != nil {
		t.Fatalf("vnetctl -script: %v\n%s", err, out)
	}
	if strings.Count(string(out), "OK") != 3 {
		t.Fatalf("want 3 OKs:\n%s", out)
	}
	// A failing script exits nonzero.
	bad := filepath.Join(dir, "bad.conf")
	os.WriteFile(bad, []byte("DEL LINK nothere\n"), 0o644)
	if err := exec.Command(vnetctl, "-server", ctrlAddr, "-script", bad).Run(); err == nil {
		t.Fatal("vnetctl succeeded on a failing script")
	}

	// Verify through a fresh TCP session that config persisted.
	conn, err := net.Dial("tcp", ctrlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, "LIST LINKS")
	line, _ := bufio.NewReader(conn).ReadString('\n')
	if !strings.Contains(line, "l1") {
		t.Fatalf("link not persisted: %q", line)
	}
}
