module vnetp

go 1.22
