package vnetp_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"vnetp"
)

// The public facade must support the full quickstart flow: nodes,
// endpoints, links, routes, traffic, control scripts.
func TestFacadeOverlayFlow(t *testing.T) {
	nodeA, err := vnetp.NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA.Close()
	nodeB, err := vnetp.NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nodeB.Close()

	macA, macB := vnetp.LocalMAC(1), vnetp.LocalMAC(2)
	epA, err := nodeA.AttachEndpoint("nic0", macA, 9000)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := nodeB.AttachEndpoint("nic0", macB, 9000)
	if err != nil {
		t.Fatal(err)
	}

	// Configure one direction via the API, the other via a control
	// script.
	if err := nodeA.AddLink("to-b", nodeB.Addr(), "udp"); err != nil {
		t.Fatal(err)
	}
	if err := nodeA.AddRoute(vnetp.Route{
		DstMAC: macB, DstQual: vnetp.QualExact, SrcQual: vnetp.QualAny,
		Dest: vnetp.Destination{Type: vnetp.DestLink, ID: "to-b"},
	}); err != nil {
		t.Fatal(err)
	}
	script := "ADD LINK to-a REMOTE " + nodeA.Addr() + "\n" +
		"ADD ROUTE " + macA.String() + " any link to-a\n"
	if err := vnetp.ApplyConfig(nodeB, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}

	if err := epA.Send(&vnetp.Frame{Dst: macB, Src: macA, Type: 0x88b5, Payload: []byte("ping")}); err != nil {
		t.Fatal(err)
	}
	if f, ok := epB.Recv(2 * time.Second); !ok || string(f.Payload) != "ping" {
		t.Fatal("facade overlay lost the frame")
	}
	if err := epB.Send(&vnetp.Frame{Dst: macA, Src: macB, Type: 0x88b5, Payload: []byte("pong")}); err != nil {
		t.Fatal(err)
	}
	if f, ok := epA.Recv(2 * time.Second); !ok || string(f.Payload) != "pong" {
		t.Fatal("facade overlay lost the reply")
	}
}

func TestFacadeSimulationFlow(t *testing.T) {
	eng := vnetp.NewSimEngine()
	tb := vnetp.NewVNETPTestbed(eng, vnetp.ClusterConfig{
		Dev: vnetp.Eth10G, N: 2, Params: vnetp.DefaultParams(),
	})
	if len(tb.Stacks) != 2 {
		t.Fatalf("%d stacks", len(tb.Stacks))
	}
	eng.Close()

	eng2 := vnetp.NewSimEngine()
	nat := vnetp.NewNativeTestbed(eng2, vnetp.Eth1G, 3)
	if len(nat.Stacks) != 3 {
		t.Fatalf("%d native stacks", len(nat.Stacks))
	}
	eng2.Close()
}

func TestFacadeExperiments(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range vnetp.Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig8", "fig14", "vnetp-plus", "table1"} {
		if !ids[want] {
			t.Errorf("experiment %q missing from facade listing", want)
		}
	}
	var buf bytes.Buffer
	if err := vnetp.RunExperiment("table1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "adaptive") {
		t.Fatal("table1 output wrong through facade")
	}
	if err := vnetp.RunExperiment("bogus", &buf); err == nil {
		t.Fatal("bogus experiment id accepted")
	}
}

func TestFacadeRoutingTable(t *testing.T) {
	tbl := vnetp.NewRoutingTable()
	mac := vnetp.LocalMAC(7)
	tbl.AddRoute(vnetp.Route{DstMAC: mac, DstQual: vnetp.QualExact, SrcQual: vnetp.QualAny,
		Dest: vnetp.Destination{Type: vnetp.DestInterface, ID: "nic0"}})
	dests, _, err := tbl.Lookup(vnetp.LocalMAC(1), mac)
	if err != nil || dests[0].ID != "nic0" {
		t.Fatalf("lookup = %v, %v", dests, err)
	}
	if _, err := vnetp.ParseMAC(mac.String()); err != nil {
		t.Fatal(err)
	}
	if !vnetp.Broadcast.IsBroadcast() {
		t.Fatal("broadcast constant wrong")
	}
}
