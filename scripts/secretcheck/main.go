// Command secretcheck is the secrets-hygiene gate run by `make verify`
// and CI: tenant AEAD keys and TLS private keys must never reach logs
// or other formatted output. The approved disclosure form for key
// material is seal.Fingerprint (first four bytes of the SHA-256, hex),
// which is what LIST TENANTS and the "tenant key installed" log line
// carry.
//
// It is a pure-stdlib text scan (no build, no network) over non-test
// .go files under internal/ and cmd/, enforcing two rules:
//
//  1. No logging call (slog/log/logger.Info|Warn|Error|Debug|Fatal|
//     Print, plus the daemons' fatal helper) may reference a
//     key-material identifier in its arguments. String literals are
//     stripped first (log MESSAGES may say "key"), and Fingerprint(...)
//     calls are stripped too — fingerprinting is the approved way to
//     mention a key.
//  2. hex.EncodeToString over key-looking material is confined to an
//     allowlist: seal.Fingerprint itself and `vnetctl newkey` (which
//     prints a freshly minted key to stdout — its entire purpose).
//
// Runtime response hygiene (TenantSummary carrying fingerprints, parse
// errors not echoing hex input) is covered by unit tests in
// internal/seal and internal/overlay; this gate catches the log-call
// regressions tests cannot see.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	logCallRe = regexp.MustCompile(
		`\b(?:[A-Za-z_][A-Za-z0-9_.]*\.)?(?:log|logger|slog)\.(?:Info|Warn|Error|Debug|Fatalf?|Fatalln|Printf?|Println)\(|\bfatal\(`)
	stringLitRe   = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")
	fingerprintRe = regexp.MustCompile(`\bFingerprint\([^()]*\)`)
	secretIdentRe = regexp.MustCompile(
		`\b(?:key|keys|hexKey|keyHex|rawKey|tenantKey|keyBytes|keyPEM|keyDER|privPEM|privDER|privKey|secret)\b`)
	hexEncodeRe = regexp.MustCompile(`hex\.EncodeToString\(([^()]*(?:\([^()]*\))?[^()]*)\)`)
	hexKeyArgRe = regexp.MustCompile(`(?i)key|priv|secret`)
)

// hexAllowlist names the files allowed to hex-encode key material.
var hexAllowlist = map[string]bool{
	filepath.Join("internal", "seal", "seal.go"): true, // Fingerprint
	filepath.Join("cmd", "vnetctl", "main.go"):   true, // newkey → stdout
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	failures := 0
	for _, dir := range []string{"internal", "cmd"} {
		err := filepath.Walk(filepath.Join(root, dir), func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(root, path)
			failures += checkFile(rel, string(b))
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "secretcheck: %v\n", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "secretcheck: %d potential secret leak(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("secretcheck: no key material in logs or encodings")
}

func checkFile(rel, src string) int {
	failures := 0
	for _, loc := range logCallRe.FindAllStringIndex(src, -1) {
		call := balancedCall(src, loc[1]-1)
		args := fingerprintRe.ReplaceAllString(stringLitRe.ReplaceAllString(call, `""`), "fp()")
		if m := secretIdentRe.FindString(args); m != "" {
			fmt.Fprintf(os.Stderr, "secretcheck: %s:%d: log call references key material %q\n",
				rel, lineOf(src, loc[0]), m)
			failures++
		}
	}
	if !hexAllowlist[rel] {
		for _, m := range hexEncodeRe.FindAllStringSubmatchIndex(src, -1) {
			arg := src[m[2]:m[3]]
			if hexKeyArgRe.MatchString(arg) {
				fmt.Fprintf(os.Stderr, "secretcheck: %s:%d: hex-encodes key-like material %q (fingerprint it instead)\n",
					rel, lineOf(src, m[0]), arg)
				failures++
			}
		}
	}
	return failures
}

// balancedCall returns the call expression starting at the opening
// paren at src[open], through its matching close (or to a sane bound).
func balancedCall(src string, open int) string {
	depth := 0
	for i := open; i < len(src) && i < open+2000; i++ {
		switch src[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return src[open : i+1]
			}
		}
	}
	return src[open:min(len(src), open+2000)]
}

func lineOf(src string, off int) int {
	return strings.Count(src[:off], "\n") + 1
}
