// Command benchguard is the bench-regression gate: it compares a fresh
// BENCH_microbench.json against the committed baseline and fails (for
// CI) when any throughput series regresses beyond the tolerance. The
// microbenchmarks are deterministic simulations, so genuine regressions
// separate cleanly from noise; latency-unit series are reported but not
// gated (they trend with the same code paths the throughput gate
// already covers). Ratio series (unit "%", e.g. the tracebench
// sampled-vs-off throughput ratios) are machine-independent and gated
// like throughput.
//
// Usage:
//
//	go run ./scripts/benchguard -bench BENCH_microbench.json \
//	    -baseline scripts/benchguard/baseline.json [-tolerance 0.15]
//	go run ./scripts/benchguard -bench BENCH_microbench.json \
//	    -baseline scripts/benchguard/baseline.json -update
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"vnetp/internal/experiments"
)

func load(path string) ([]experiments.Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []experiments.Record
	if err := json.Unmarshal(b, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func key(r experiments.Record) string { return r.ID + "/" + r.Metric }

func main() {
	bench := flag.String("bench", "BENCH_microbench.json", "freshly produced benchmark records")
	baseline := flag.String("baseline", "scripts/benchguard/baseline.json", "committed baseline records")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional throughput drop before failing")
	update := flag.Bool("update", false, "rewrite the baseline from -bench instead of comparing")
	flag.Parse()

	if *update {
		src, err := os.Open(*bench)
		if err != nil {
			log.Fatalf("benchguard: %v", err)
		}
		defer src.Close()
		dst, err := os.Create(*baseline)
		if err != nil {
			log.Fatalf("benchguard: %v", err)
		}
		if _, err := io.Copy(dst, src); err != nil {
			log.Fatalf("benchguard: %v", err)
		}
		if err := dst.Close(); err != nil {
			log.Fatalf("benchguard: %v", err)
		}
		fmt.Printf("benchguard: baseline %s updated from %s\n", *baseline, *bench)
		return
	}

	baseRecs, err := load(*baseline)
	if err != nil {
		log.Fatalf("benchguard: %v", err)
	}
	benchRecs, err := load(*bench)
	if err != nil {
		log.Fatalf("benchguard: %v", err)
	}
	got := make(map[string]experiments.Record, len(benchRecs))
	for _, r := range benchRecs {
		got[key(r)] = r
	}

	failures := 0
	for _, base := range baseRecs {
		cur, ok := got[key(base)]
		if !ok {
			fmt.Printf("FAIL %-40s missing from %s\n", key(base), *bench)
			failures++
			continue
		}
		// Throughput (MB/s) and throughput-ratio (%) series are gated;
		// latency series are informational only (they trend with the
		// same code paths the throughput gate already covers).
		if base.Unit != "MB/s" && base.Unit != "%" {
			fmt.Printf("info %-40s %10.2f -> %10.2f %s\n", key(base), base.Value, cur.Value, base.Unit)
			continue
		}
		floor := base.Value * (1 - *tolerance)
		delta := 0.0
		if base.Value != 0 {
			delta = (cur.Value - base.Value) / base.Value * 100
		}
		if cur.Value < floor {
			fmt.Printf("FAIL %-40s %10.2f -> %10.2f %s (%+.1f%%, floor %.2f)\n",
				key(base), base.Value, cur.Value, base.Unit, delta, floor)
			failures++
			continue
		}
		fmt.Printf("ok   %-40s %10.2f -> %10.2f %s (%+.1f%%)\n",
			key(base), base.Value, cur.Value, base.Unit, delta)
	}
	if failures > 0 {
		fmt.Printf("benchguard: %d series regressed beyond %.0f%% (or went missing)\n",
			failures, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d series within tolerance\n", len(baseRecs))
}
