// Command driftcheck keeps DESIGN.md and the code in lockstep on the
// two observability vocabularies tooling depends on:
//
//   - every `vnetp_*` metric family registered in code must appear in
//     DESIGN.md's metrics index, and every family the index documents
//     must exist in code;
//   - every trace stage constant in internal/trace must appear on the
//     "Stages:" line of DESIGN.md's tracing section, and vice versa.
//
// It is a pure-stdlib text scan (no build, no network) run by `make
// verify` and CI, so renaming a metric or adding a stage without
// updating the documentation fails the gate.
//
// Parsing rules: code metric names are quoted "vnetp_..." literals in
// non-test .go files (histogram _bucket/_sum/_count derivations collapse
// into their base family); DESIGN.md metric tokens are `vnetp_[a-z0-9_]+`
// words, with tokens ending in "_" discarded — those are prefixes from
// glob or brace shorthand (`vnetp_dispatcher_*_total`,
// `vnetp_link_bytes_{sent,recv}_total`), which the full-name index makes
// redundant.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	codeMetricRe   = regexp.MustCompile(`"(vnetp_[a-z0-9_]+)"`)
	designMetricRe = regexp.MustCompile(`vnetp_[a-z0-9_]+`)
	stageConstRe   = regexp.MustCompile(`Stage[A-Za-z]+\s*=\s*"([a-z_]+)"`)
	stageTokenRe   = regexp.MustCompile("`([a-z_]+)`")
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	codeMetrics, err := collectCodeMetrics(root)
	if err != nil {
		fatal(err)
	}
	codeStages, err := collectCodeStages(filepath.Join(root, "internal", "trace"))
	if err != nil {
		fatal(err)
	}
	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		fatal(err)
	}
	docMetrics := collectDesignMetrics(string(design))
	docStages, err := collectDesignStages(string(design))
	if err != nil {
		fatal(err)
	}

	failures := 0
	failures += diff("metric", "code", "DESIGN.md", codeMetrics, docMetrics)
	failures += diff("metric", "DESIGN.md", "code", docMetrics, codeMetrics)
	failures += diff("stage", "code", "DESIGN.md", codeStages, docStages)
	failures += diff("stage", "DESIGN.md", "code", docStages, codeStages)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "driftcheck: %d name(s) drifted between code and DESIGN.md\n", failures)
		os.Exit(1)
	}
	fmt.Printf("driftcheck: %d metric families and %d trace stages in sync\n",
		len(codeMetrics), len(codeStages))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "driftcheck: %v\n", err)
	os.Exit(1)
}

// diff reports every name in a that is missing from b.
func diff(kind, aName, bName string, a, b map[string]bool) int {
	var missing []string
	for name := range a {
		if !b[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "driftcheck: %s %q is in %s but not in %s\n", kind, name, aName, bName)
	}
	return len(missing)
}

// collectCodeMetrics scans every non-test .go file under internal/ and
// cmd/ for quoted vnetp_* literals. Histogram expansion references
// (_bucket/_sum/_count) collapse into their base family when the base
// is also present, since the exposition derives them.
func collectCodeMetrics(root string) (map[string]bool, error) {
	names := map[string]bool{}
	for _, dir := range []string{"internal", "cmd"} {
		err := filepath.Walk(filepath.Join(root, dir), func(path string, info os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range codeMetricRe.FindAllStringSubmatch(string(b), -1) {
				names[m[1]] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for name := range names {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && names[base] {
				delete(names, name)
				break
			}
		}
	}
	return names, nil
}

// collectCodeStages pulls the Stage* string constants from the trace
// package sources.
func collectCodeStages(dir string) (map[string]bool, error) {
	stages := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, m := range stageConstRe.FindAllStringSubmatch(string(b), -1) {
			stages[m[1]] = true
		}
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("no Stage constants found under %s", dir)
	}
	return stages, nil
}

// collectDesignMetrics pulls vnetp_* tokens out of DESIGN.md, dropping
// trailing-underscore prefixes left by glob/brace shorthand.
func collectDesignMetrics(design string) map[string]bool {
	names := map[string]bool{}
	for _, tok := range designMetricRe.FindAllString(design, -1) {
		if strings.HasSuffix(tok, "_") {
			continue
		}
		names[tok] = true
	}
	return names
}

// collectDesignStages parses the "Stages:" sentence of the tracing
// section: every backticked token up to the terminating period.
func collectDesignStages(design string) (map[string]bool, error) {
	idx := strings.Index(design, "Stages:")
	if idx < 0 {
		return nil, fmt.Errorf(`DESIGN.md has no "Stages:" line`)
	}
	rest := design[idx:]
	end := strings.Index(rest, ".")
	if end < 0 {
		end = len(rest)
	}
	stages := map[string]bool{}
	for _, m := range stageTokenRe.FindAllStringSubmatch(rest[:end], -1) {
		stages[m[1]] = true
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf(`DESIGN.md "Stages:" line lists no stages`)
	}
	return stages, nil
}
