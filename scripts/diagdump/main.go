// Command diagdump boots an in-process overlay node, drives a small
// amount of representative traffic through it (deliveries, drops, a
// sealed-tenant reject), and writes the node's diagnostic snapshot
// bundle (overlay.Diag, the same document GET /diag serves) as indented
// JSON to stdout.
//
// CI's chaos job runs it when the suite fails and uploads the output as
// an artifact: the bundle captures the toolchain, platform, effective
// datapath defaults, and a live render of every metric family on the
// runner — enough to tell an environment-shaped failure (weird loopback
// behavior, starved runner) from a real datapath regression without
// re-running anything.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"vnetp/internal/ethernet"
	"vnetp/internal/overlay"
	"vnetp/internal/seal"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "diagdump:", err)
	os.Exit(1)
}

func main() {
	n, err := overlay.NewNodeWithConfig("diagdump", "127.0.0.1:0", overlay.NodeConfig{})
	if err != nil {
		fail(err)
	}
	defer n.Close()
	src, err := n.AttachEndpoint("src", ethernet.LocalMAC(1), 1500)
	if err != nil {
		fail(err)
	}
	dst, err := n.AttachEndpoint("dst", ethernet.LocalMAC(2), 1500)
	if err != nil {
		fail(err)
	}
	// Deliveries, flow accounting, heavy hitters.
	for i := 0; i < 32; i++ {
		if err := src.Send(&ethernet.Frame{Dst: dst.MAC(), Src: src.MAC(),
			Type: ethernet.TypeTest, Payload: []byte("diagdump")}); err != nil {
			fail(err)
		}
		dst.TryRecv()
	}
	// A ledger entry and a keyed tenant so those sections render
	// populated.
	src.Send(&ethernet.Frame{Dst: ethernet.LocalMAC(9), Src: src.MAC(),
		Type: ethernet.TypeTest, Payload: []byte("unrouted")})
	if key, err := seal.NewKey(); err == nil {
		n.AddTenant(7, key)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(n.Diag()); err != nil {
		fail(err)
	}
}
