// Package vnetp is a Go reproduction of VNET/P (Xia et al., HPDC 2012):
// fast VMM-embedded overlay networking that bridges cloud and HPC
// resources by giving a set of VMs a single flat Ethernet LAN, carried as
// UDP-encapsulated frames over whatever the physical interconnect is.
//
// The library has two cooperating halves:
//
//   - A functional overlay (NewNode/Endpoint) that routes real Ethernet
//     frames between in-process endpoints and remote nodes over real UDP
//     sockets, using MAC-indexed routing tables with a routing cache,
//     VNET/U-compatible encapsulation with fragmentation/reassembly, and
//     a control-language console for dynamic reconfiguration.
//
//   - A deterministic performance simulation (NewSimEngine plus the
//     Cluster/Testbed builders) that models the full virtualization
//     datapath — VM exits, virtio rings, packet dispatchers in
//     guest-driven/VMM-driven/adaptive modes, the host bridge, and
//     physical interconnects from 1G Ethernet to Cray Gemini — and
//     regenerates every table and figure of the paper's evaluation
//     (RunExperiment).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package vnetp

import (
	"io"

	"vnetp/internal/control"
	"vnetp/internal/core"
	"vnetp/internal/ethernet"
	"vnetp/internal/experiments"
	"vnetp/internal/faultnet"
	"vnetp/internal/lab"
	"vnetp/internal/overlay"
	"vnetp/internal/phys"
	"vnetp/internal/sim"
)

// --- Layer-2 fundamentals ---

// MAC is a 48-bit Ethernet address.
type MAC = ethernet.MAC

// Frame is an Ethernet-II frame.
type Frame = ethernet.Frame

// Broadcast is the all-ones MAC address.
var Broadcast = ethernet.Broadcast

// ParseMAC parses "aa:bb:cc:dd:ee:ff".
func ParseMAC(s string) (MAC, error) { return ethernet.ParseMAC(s) }

// LocalMAC deterministically derives a locally administered unicast MAC
// from an id.
func LocalMAC(id uint32) MAC { return ethernet.LocalMAC(id) }

// --- Routing ---

// Route is one VNET routing rule; Destination its target.
type (
	Route       = core.Route
	Destination = core.Destination
	Qualifier   = core.Qualifier
	DestType    = core.DestType
)

// Route qualifier and destination-type values.
const (
	QualExact     = core.QualExact
	QualAny       = core.QualAny
	QualNot       = core.QualNot
	DestInterface = core.DestInterface
	DestLink      = core.DestLink
)

// NewRoutingTable returns a standalone VNET routing table (linear rules
// plus the hash routing cache).
func NewRoutingTable() *core.Table { return core.NewTable() }

// --- Functional overlay (real UDP sockets) ---

// Node is an overlay routing node; Endpoint an in-process guest NIC
// attached to one. NodeConfig tunes the receive datapath (dispatcher pool
// size and per-dispatcher ring depth).
type (
	Node       = overlay.Node
	Endpoint   = overlay.Endpoint
	NodeConfig = overlay.NodeConfig
)

// NewNode binds an overlay node to a UDP address with the default receive
// configuration (min(4, GOMAXPROCS) packet dispatchers).
func NewNode(name, bindAddr string) (*Node, error) { return overlay.NewNode(name, bindAddr) }

// NewNodeWithConfig binds an overlay node with an explicit receive
// datapath configuration — the real-socket analogue of the paper's
// multiple-packet-dispatcher VMM-driven mode (Sect. 4.3, Fig. 5).
func NewNodeWithConfig(name, bindAddr string, cfg NodeConfig) (*Node, error) {
	return overlay.NewNodeWithConfig(name, bindAddr, cfg)
}

// DefaultDispatchers reports the default receive dispatcher pool size.
func DefaultDispatchers() int { return overlay.DefaultDispatchers() }

// --- Link health and fault injection ---

// HealthConfig tunes a node's link health monitor (Node.EnableHealth);
// LinkState is a monitored link's liveness verdict.
type (
	HealthConfig = overlay.HealthConfig
	LinkState    = overlay.LinkState
)

// Link liveness states.
const (
	LinkUp       = overlay.LinkUp
	LinkDegraded = overlay.LinkDegraded
	LinkDown     = overlay.LinkDown
)

// DefaultHealthConfig returns moderate production-style heartbeat
// thresholds.
func DefaultHealthConfig() HealthConfig { return overlay.DefaultHealthConfig() }

// FaultConduit injects faults (loss, duplication, reordering, delay,
// partition) into a packet path; FaultConfig parameterizes it. Install
// one on an overlay link with Node.SetLinkFault or on a simulated host
// wire with vmm.Host.SetFault.
type (
	FaultConduit = faultnet.Conduit
	FaultConfig  = faultnet.Config
)

// NewFaultConduit builds a real-time fault conduit.
func NewFaultConduit(cfg FaultConfig) *FaultConduit { return faultnet.New(cfg) }

// NewControlDaemon exposes a node (or any control.Target) on a TCP
// control console speaking the VNET/U configuration language.
func NewControlDaemon(target control.Target, addr string) (*control.Daemon, error) {
	return control.NewDaemon(target, addr)
}

// ApplyConfig applies a configuration script to a node.
func ApplyConfig(target control.Target, script io.Reader) error {
	return control.RunScript(target, script)
}

// --- Performance simulation ---

// SimEngine is the deterministic discrete-event engine behind the
// performance half.
type SimEngine = sim.Engine

// NewSimEngine returns a fresh engine with the clock at zero.
func NewSimEngine() *SimEngine { return sim.New() }

// Params are VNET/P's tuning parameters (paper Table 1 defaults via
// DefaultParams).
type Params = core.Params

// DefaultParams returns the paper's Table 1 configuration.
func DefaultParams() Params { return core.DefaultParams() }

// Dispatch modes (paper Sect. 4.3).
const (
	GuestDriven = core.GuestDriven
	VMMDriven   = core.VMMDriven
	Adaptive    = core.Adaptive
)

// Device models a physical interconnect; the presets cover the paper's
// testbeds.
type Device = phys.Device

// Interconnect presets.
var (
	Eth1G     = phys.Eth1G
	Eth10G    = phys.Eth10G
	Eth10GStd = phys.Eth10GStd
	IPoIB     = phys.IPoIB
	Gemini    = phys.Gemini
)

// Testbed is a simulated cluster with per-node transport stacks, in one
// of the three software configurations the paper compares.
type Testbed = lab.Testbed

// ClusterConfig parameterizes a simulated VNET/P cluster.
type ClusterConfig = lab.Config

// NewVNETPTestbed builds a simulated VNET/P cluster (one VM per host,
// full-mesh overlay) with attached guest stacks.
func NewVNETPTestbed(eng *SimEngine, cfg ClusterConfig) *Testbed {
	return lab.NewVNETPTestbed(eng, cfg)
}

// NewNativeTestbed builds the non-virtualized comparator cluster.
func NewNativeTestbed(eng *SimEngine, dev Device, n int) *Testbed {
	return lab.NewNativeTestbed(eng, dev, n)
}

// --- Evaluation ---

// RunExperiment regenerates one of the paper's tables or figures by ID
// (e.g. "fig8", "fig14"; see Experiments for the index), writing rows to
// w.
func RunExperiment(id string, w io.Writer) error { return experiments.Run(id, w) }

// RunAllExperiments regenerates the complete evaluation.
func RunAllExperiments(w io.Writer) error { return experiments.RunAll(w) }

// Experiments lists the available experiment IDs and titles.
func Experiments() []experiments.Experiment { return experiments.All() }
