# Standard entry points; `make verify` is the gate a change must pass.

GO ?= go

.PHONY: build test vet race verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full verification: compile, static checks, plain suite, race suite.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
