# Standard entry points; `make verify` is the gate a change must pass.

GO ?= go

.PHONY: build test vet race verify bench bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full verification: compile, static checks, plain suite, race suite.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Machine-readable microbenchmark results (CI uploads the JSON artifact).
bench-json:
	$(GO) run ./cmd/vnetbench -json BENCH_microbench.json

clean:
	$(GO) clean ./...
