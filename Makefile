# Standard entry points; `make verify` is the gate a change must pass.

GO ?= go

.PHONY: build test vet race drift secretcheck verify chaos bench bench-json bench-baseline fuzz-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Documentation drift gate: every vnetp_* metric family and trace stage
# name must match between the code and DESIGN.md.
drift:
	$(GO) run ./scripts/driftcheck

# Secrets-hygiene gate: tenant AEAD keys and TLS private keys must never
# reach logs or hex encodings (fingerprints are the approved form).
secretcheck:
	$(GO) run ./scripts/secretcheck

# Full verification: compile, static checks, plain suite, race suite,
# doc drift, secrets hygiene.
verify: build vet test race drift secretcheck

# Crash-injection and drain-stress suite: panics and stalls injected
# into live datapath components, graceful-drain and close-under-traffic
# leak checks, and the control-plane hardening tests. Always under
# -race, with a hard timeout so a deadlocked teardown fails instead of
# hanging CI.
chaos:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'Chaos|Drain|CloseUnderTraffic|Churn|Supervis|Panic|Backoff|Watchdog|Stop|Inject|Daemon|Client|Idempotent' \
		./internal/overlay ./internal/supervise ./internal/control

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Machine-readable microbenchmark results (CI uploads the JSON artifact),
# gated against the committed baseline: >15% throughput regression fails.
# Refresh the baseline intentionally with `make bench-baseline`.
bench-json:
	$(GO) run ./cmd/vnetbench -json BENCH_microbench.json
	$(GO) run ./scripts/benchguard -bench BENCH_microbench.json -baseline scripts/benchguard/baseline.json

bench-baseline:
	$(GO) run ./cmd/vnetbench -json BENCH_microbench.json
	$(GO) run ./scripts/benchguard -bench BENCH_microbench.json -baseline scripts/benchguard/baseline.json -update

# Short coverage-guided runs of each fuzz target (the CI smoke).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzEncapDecode -fuzztime=10s ./internal/bridge
	$(GO) test -run=^$$ -fuzz=FuzzReassembler -fuzztime=10s ./internal/bridge
	$(GO) test -run=^$$ -fuzz=FuzzSealOpen -fuzztime=10s ./internal/seal
	$(GO) test -run=^$$ -fuzz=FuzzFlowKey -fuzztime=10s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzFlowCache -fuzztime=10s ./internal/overlay

clean:
	$(GO) clean ./...
