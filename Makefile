# Standard entry points; `make verify` is the gate a change must pass.

GO ?= go

.PHONY: build test vet race drift verify bench bench-json bench-baseline fuzz-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Documentation drift gate: every vnetp_* metric family and trace stage
# name must match between the code and DESIGN.md.
drift:
	$(GO) run ./scripts/driftcheck

# Full verification: compile, static checks, plain suite, race suite,
# doc drift.
verify: build vet test race drift

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Machine-readable microbenchmark results (CI uploads the JSON artifact),
# gated against the committed baseline: >15% throughput regression fails.
# Refresh the baseline intentionally with `make bench-baseline`.
bench-json:
	$(GO) run ./cmd/vnetbench -json BENCH_microbench.json
	$(GO) run ./scripts/benchguard -bench BENCH_microbench.json -baseline scripts/benchguard/baseline.json

bench-baseline:
	$(GO) run ./cmd/vnetbench -json BENCH_microbench.json
	$(GO) run ./scripts/benchguard -bench BENCH_microbench.json -baseline scripts/benchguard/baseline.json -update

# Short coverage-guided runs of each fuzz target (the CI smoke).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzEncapDecode -fuzztime=10s ./internal/bridge
	$(GO) test -run=^$$ -fuzz=FuzzReassembler -fuzztime=10s ./internal/bridge

clean:
	$(GO) clean ./...
